#include "arq/recovery_strategy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "arq/adaptive_burst.h"
#include "arq/feedback.h"
#include "arq/recovery_session.h"
#include "common/crc.h"
#include "fec/coded_repair.h"
#include "fec/reed_solomon.h"
#include "fec/rlnc.h"

namespace ppr::arq {
namespace {

constexpr unsigned kSeqBits = 16;
constexpr unsigned kPartyCountBits = 8;
constexpr unsigned kCountBits = 16;
constexpr unsigned kSeedBits = 32;
// Reliable per-frame descriptor overhead a relay pays beyond the seed:
// origin id and a quantized suspicion score (the coefficient mask adds
// one further bit per FEC source symbol).
constexpr unsigned kOriginBits = 8;
constexpr unsigned kSuspicionBits = 16;
constexpr double kForcedBadHint = std::numeric_limits<double>::infinity();

// Burst requests are bounded so a floor-clamped delivery estimate
// cannot ask for unbounded streams; both ends compute the same cap so
// requested always equals sent.
std::size_t MaxRepairBurst(std::size_t num_source) {
  return std::min<std::size_t>(0xFFFF, 4 * num_source);
}

// The SoftPHY-labeled image of a packet body any coded party (the
// destination, an overhearing relay) assembles from the initial
// transmission: per-codeword best-hint merge of decoded symbols, plus
// the FEC-symbol trust labeling derived from the hints. One shared
// definition keeps every party's view of the codeword-to-bits
// convention identical.
struct SoftPhyBody {
  BitVec bits;
  std::vector<double> hints;
  bool received = false;

  SoftPhyBody(std::size_t total_codewords, std::size_t bits_per_codeword)
      : bits(total_codewords * bits_per_codeword, false),
        hints(total_codewords, kForcedBadHint) {}

  void Merge(const std::vector<phy::DecodedSymbol>& symbols,
             std::size_t bits_per_codeword) {
    if (symbols.size() != hints.size()) {
      throw std::invalid_argument("IngestInitial: codeword count mismatch");
    }
    const std::size_t bpc = bits_per_codeword;
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      if (symbols[i].hint <= hints[i]) {
        hints[i] = symbols[i].hint;
        for (std::size_t b = 0; b < bpc; ++b) {
          bits.Set(i * bpc + b, (symbols[i].symbol >> (bpc - 1 - b)) & 1u);
        }
      }
    }
    received = true;
  }

  // Per-FEC-symbol labeling: good[s] iff every codeword in symbol s
  // clears the eta threshold; suspicion[s] is the symbol's worst hint.
  struct Labels {
    std::vector<bool> good;
    std::vector<double> suspicion;
  };
  Labels Label(std::size_t codewords_per_symbol, double eta) const {
    const std::size_t n =
        (hints.size() + codewords_per_symbol - 1) / codewords_per_symbol;
    Labels out;
    out.good.assign(n, true);
    out.suspicion.assign(n, 0.0);
    for (std::size_t cw = 0; cw < hints.size(); ++cw) {
      const std::size_t s = cw / codewords_per_symbol;
      if (hints[cw] > eta) out.good[s] = false;
      out.suspicion[s] = std::max(out.suspicion[s], hints[cw]);
    }
    return out;
  }
};

// ------------------------------------------------------------------ chunk

class ChunkRetransmitSender : public RecoverySender {
 public:
  ChunkRetransmitSender(const BitVec& body, std::uint16_t seq,
                        const PpArqConfig& config)
      : config_(config), sender_(body, seq, config) {}

  RepairPlan HandleFeedback(const BitVec& feedback_wire) override {
    RepairPlan plan;
    const auto decoded =
        DecodeFeedback(feedback_wire, sender_.total_codewords(),
                       config_.bits_per_codeword, config_.checksum_bits);
    if (!decoded.has_value()) {
      // Feedback frames are reliable at this layer; an unparsable wire
      // is a codec bug, not channel damage.
      throw std::logic_error("feedback round-trip failed");
    }
    const RetransmissionPacket retx = sender_.HandleFeedback(*decoded);
    plan.wire_bits =
        EncodeRetransmission(retx, sender_.total_codewords(),
                             config_.bits_per_codeword)
            .size();
    plan.frames.reserve(retx.segments.size());
    for (const auto& seg : retx.segments) {
      plan.frames.push_back(RepairFrame{seg.range, 0, seg.bits});
    }
    return plan;
  }

 private:
  PpArqConfig config_;
  PpArqSender sender_;
};

class ChunkRetransmitReceiver : public RecoveryReceiver {
 public:
  ChunkRetransmitReceiver(std::uint16_t seq, std::size_t total_codewords,
                          const PpArqConfig& config)
      : receiver_(seq, total_codewords, config) {}

  void IngestInitial(const std::vector<phy::DecodedSymbol>& symbols) override {
    receiver_.IngestInitial(symbols);
  }

  bool Complete() const override { return receiver_.Complete(); }

  std::optional<BitVec> BuildFeedbackWire() override {
    const auto fb = receiver_.BuildFeedback();
    if (!fb.has_value()) return std::nullopt;
    return receiver_.EncodeFeedbackWire(*fb);
  }

  void IngestRepair(const std::vector<ReceivedRepairFrame>& frames) override {
    std::vector<ReceivedSegment> segments;
    segments.reserve(frames.size());
    for (const auto& f : frames) {
      segments.push_back(ReceivedSegment{f.range, f.symbols});
    }
    receiver_.IngestRetransmission(segments);
  }

  BitVec AssembledPayload() const override {
    return receiver_.AssembledPayload();
  }

  std::size_t rounds() const override { return receiver_.rounds(); }

 private:
  PpArqReceiver receiver_;
};

class ChunkRetransmitStrategy : public RecoveryStrategy {
 public:
  explicit ChunkRetransmitStrategy(const PpArqConfig& config)
      : config_(config) {}

  const char* Name() const override { return "chunk-retransmit"; }

  std::unique_ptr<RecoverySender> MakeSender(const BitVec& body_bits,
                                             std::uint16_t seq) const override {
    return std::make_unique<ChunkRetransmitSender>(body_bits, seq, config_);
  }

  std::unique_ptr<RecoveryReceiver> MakeReceiver(
      std::uint16_t seq, std::size_t total_codewords) const override {
    return std::make_unique<ChunkRetransmitReceiver>(seq, total_codewords,
                                                     config_);
  }

 private:
  PpArqConfig config_;
};

// ------------------------------------------------------------------ coded

// Batches `count` [data || CRC-32] records into body-sized frames.
// `make_record` is called once per record, in order; it receives the
// frame pointer on each frame's FIRST record to fill the descriptor
// (base seed etc. — record k of a frame is expected to use the
// counter-consecutive seed base + k). A frame costs one reliable
// descriptor however many records it carries, and a partial collision
// costs only the records it actually hits. No frame exceeds the
// original body size — carriers that bound frame length (e.g. the
// waveform pipeline's max_payload_octets) must keep accepting repair
// frames whenever they accepted the initial transmission.
// [data || CRC-32] record size and frame capacity shared by the
// batcher below and every wire-cost computation priced against it.
std::size_t RepairRecordBits(std::size_t record_payload_bits) {
  return record_payload_bits + 32;
}
std::size_t RepairRecordsPerFrame(std::size_t record_payload_bits,
                                  std::size_t body_bits) {
  return std::max<std::size_t>(1,
                               body_bits / RepairRecordBits(record_payload_bits));
}

// Wire cost of a `count`-record burst as BatchRepairRecords will pack
// it: the records themselves plus one reliable `descriptor_bits`
// descriptor per frame.
std::size_t BatchedBurstWireBits(std::size_t count,
                                 std::size_t record_payload_bits,
                                 std::size_t body_bits,
                                 std::size_t descriptor_bits) {
  const std::size_t per_frame =
      RepairRecordsPerFrame(record_payload_bits, body_bits);
  return count * RepairRecordBits(record_payload_bits) +
         (count + per_frame - 1) / per_frame * descriptor_bits;
}

template <typename MakeRecord>
std::vector<RepairFrame> BatchRepairRecords(std::size_t count,
                                            std::size_t record_payload_bits,
                                            std::size_t body_bits,
                                            std::size_t bits_per_codeword,
                                            const MakeRecord& make_record) {
  const std::size_t per_frame =
      RepairRecordsPerFrame(record_payload_bits, body_bits);
  std::vector<RepairFrame> frames;
  for (std::size_t done = 0; done < count;) {
    const std::size_t batch = std::min(per_frame, count - done);
    RepairFrame frame;
    for (std::size_t k = 0; k < batch; ++k) {
      const BitVec data = make_record(k == 0 ? &frame : nullptr);
      frame.bits.AppendBits(data);
      frame.bits.AppendUint(Crc32Bits(data), 32);
    }
    frame.range = CodewordRange{0, frame.bits.size() / bits_per_codeword};
    frames.push_back(std::move(frame));
    done += batch;
  }
  return frames;
}

class CodedRepairSender : public RecoverySender {
 public:
  CodedRepairSender(const BitVec& body, std::uint16_t seq,
                    const PpArqConfig& config)
      : config_(config),
        seq_(seq),
        body_bits_(body.size()),
        encoder_(fec::BodyToSymbols(body, config.bits_per_codeword,
                                    config.codewords_per_fec_symbol)) {
    if (config.fec_codec == fec::CodecKind::kReedSolomon) {
      // RS(k, m = k) parity, computed once up front: every later round
      // streams precomputed symbols instead of paying a per-record
      // GF(256) combination.
      rs_.emplace(encoder_.num_source(), encoder_.num_source(),
                  encoder_.symbol_bytes());
      for (std::size_t i = 0; i < encoder_.num_source(); ++i) {
        rs_->SetSource(i, encoder_.source()[i]);
      }
      rs_->Finish();
    }
  }

  RepairPlan HandleFeedback(const BitVec& feedback_wire) override {
    RepairPlan plan;
    const auto fb = DecodeCodedFeedbackWire(feedback_wire);
    if (!fb.has_value()) {
      throw std::logic_error("coded feedback round-trip failed");
    }
    plan.wire_bits = kSeqBits + kCountBits;
    // The source is always party 0 of the wire, however many relay
    // counts follow.
    const std::size_t requested = fb->requested.front();
    if (fb->seq != seq_ || requested == 0) return plan;
    // The receiver sizes its own burst (arq/adaptive_burst.h); the
    // sender obeys, bounded by the shared cap.
    const std::size_t count =
        std::min(requested, MaxRepairBurst(encoder_.num_source()));
    plan.frames = BatchRepairRecords(
        count, encoder_.symbol_bytes() * 8, body_bits_,
        config_.bits_per_codeword, [&](RepairFrame* frame) {
          if (frame) frame->aux = next_seed_;
          if (rs_.has_value()) {
            // Seed counter c carries parity index (c - 1) mod m — the
            // receiver's CodedRepairSession::ConsumeRepair mapping —
            // so the stream cycles the parity set and a lost index
            // comes around again.
            const std::size_t m = rs_->num_parity();
            const auto parity = rs_->Parity((next_seed_ - 1) % m);
            ++next_seed_;
            return BitVec::FromBytes(parity);
          }
          const fec::RepairSymbol repair = encoder_.MakeRepair(next_seed_);
          ++next_seed_;
          return BitVec::FromBytes(repair.data);
        });
    for (const auto& frame : plan.frames) {
      plan.wire_bits += kSeedBits + frame.bits.size();
    }
    return plan;
  }

 private:
  PpArqConfig config_;
  std::uint16_t seq_;
  std::size_t body_bits_;
  fec::RlncEncoder encoder_;
  std::optional<fec::ReedSolomonEncoder> rs_;
  std::uint32_t next_seed_ = 1;
};

// Shared destination core of the coded strategies: SoftPHY-labeled
// assembly of the initial transmission, the bridge into
// fec::CodedRepairSession, record parsing, and decode-verify-evict.
// Subclasses own the feedback wire (how much to request, from whom).
class CodedReceiverBase : public RecoveryReceiver {
 public:
  CodedReceiverBase(std::uint16_t seq, std::size_t total_codewords,
                    const PpArqConfig& config)
      : config_(config),
        seq_(seq),
        body_(total_codewords, config.bits_per_codeword) {
    if (total_codewords * config.bits_per_codeword <= 32) {
      throw std::invalid_argument(
          "CodedReceiverBase: body must exceed the 32-bit trailing CRC");
    }
  }

  void IngestInitial(const std::vector<phy::DecodedSymbol>& symbols) override {
    body_.Merge(symbols, config_.bits_per_codeword);
  }

  bool Complete() const override {
    if (decoded_ok_) return true;
    if (!body_.received) return false;
    return BodyCrcOk(body_.bits);
  }

  std::optional<BitVec> BuildFeedbackWire() override {
    if (Complete()) return std::nullopt;
    ++rounds_;
    EnsureSession();
    // A decodable-but-wrong basis (pure SoftPHY miss, no erasures) is
    // resolved here: TryFinish evicts suspects, growing the deficit.
    TryFinish();
    if (Complete()) return std::nullopt;
    return BuildRequestWire();
  }

  void IngestRepair(const std::vector<ReceivedRepairFrame>& frames) override {
    if (!session_.has_value() || decoded_ok_) return;
    for (const auto& f : frames) IngestRepairFrame(f);
    TryFinish();
  }

  BitVec AssembledPayload() const override {
    return body_.bits.Slice(0, body_.bits.size() - 32);
  }

  std::size_t rounds() const override { return rounds_; }

 protected:
  // The strategy-specific feedback, built while incomplete (the session
  // exists and its deficit is current).
  virtual BitVec BuildRequestWire() = 0;
  virtual void IngestRepairFrame(const ReceivedRepairFrame& frame) = 0;

  std::size_t Deficit() const { return session_->Deficit(); }
  std::size_t NumSourceSymbols() const {
    const std::size_t cps = config_.codewords_per_fec_symbol;
    return (body_.hints.size() + cps - 1) / cps;
  }
  fec::CodedRepairSession& session() { return *session_; }
  const PpArqConfig& config() const { return config_; }
  std::uint16_t seq() const { return seq_; }

  // Consumes a source-originated frame: every CRC-valid record is a
  // trusted repair symbol with seed aux + k (the source's plain-counter
  // partition); `estimator` learns the delivery count.
  void ConsumeSourceFrame(const ReceivedRepairFrame& f,
                          RepairDeliveryEstimator& estimator) {
    const std::size_t valid = ForEachValidRecord(f, [&](std::size_t k,
                                                        const BitVec& data) {
      session().ConsumeRepair(fec::RepairSymbol{
          f.aux + static_cast<std::uint32_t>(k), data.ToBytes()});
    });
    estimator.OnDelivered(valid);
  }

  // Walks the [data || CRC-32] records of one frame, invoking
  // `on_record(k, data)` for each record whose CRC verifies; corrupted
  // records are dropped individually. Returns the number of valid
  // records.
  template <typename OnRecord>
  std::size_t ForEachValidRecord(const ReceivedRepairFrame& f,
                                 const OnRecord& on_record) {
    const std::size_t payload_bits = session_->symbol_bytes() * 8;
    const std::size_t record_bits = payload_bits + 32;
    BitVec rb;
    for (const auto& s : f.symbols) {
      rb.AppendUint(s.symbol, static_cast<unsigned>(config_.bits_per_codeword));
    }
    const std::size_t count = rb.size() / record_bits;
    std::size_t valid = 0;
    for (std::size_t k = 0; k < count; ++k) {
      const BitVec data = rb.Slice(k * record_bits, payload_bits);
      const auto crc = static_cast<std::uint32_t>(
          rb.ReadUint(k * record_bits + payload_bits, 32));
      if (Crc32Bits(data) != crc) continue;
      ++valid;
      on_record(k, data);
    }
    return valid;
  }

  // Session lifecycle, exposed to subclasses that accept equations
  // outside the feedback loop (the collision path banks rank BEFORE the
  // first feedback round runs).
  void EnsureSession() {
    if (session_.has_value()) return;
    const std::size_t cps = config_.codewords_per_fec_symbol;
    auto symbols =
        fec::BodyToSymbols(body_.bits, config_.bits_per_codeword, cps);
    auto labels = body_.Label(cps, config_.eta);
    session_.emplace(std::move(symbols), std::move(labels.good),
                     std::move(labels.suspicion), config_.fec_codec);
  }

  void TryFinish() {
    if (!session_.has_value() || decoded_ok_) return;
    while (session_->CanDecode()) {
      const BitVec decoded =
          fec::SymbolsToBody(session_->Decode(), body_.bits.size());
      if (BodyCrcOk(decoded)) {
        body_.bits = decoded;
        decoded_ok_ = true;
        return;
      }
      // Wrong basis: a confident-but-wrong row (the receiver's own
      // SoftPHY miss, or a relay equation built from one). Distrust the
      // most suspect rows and keep consuming rank.
      if (session_->EvictSuspects() == 0) return;
    }
  }

 private:
  bool BodyCrcOk(const BitVec& body) const {
    const std::size_t payload_bits = body.size() - 32;
    const auto stored =
        static_cast<std::uint32_t>(body.ReadUint(payload_bits, 32));
    return Crc32Bits(body.Slice(0, payload_bits)) == stored;
  }

  PpArqConfig config_;
  std::uint16_t seq_;
  SoftPhyBody body_;
  std::optional<fec::CodedRepairSession> session_;
  bool decoded_ok_ = false;
  std::size_t rounds_ = 0;
};

// Two-party coded destination: one estimator, a one-party wire.
class CodedRepairReceiver : public CodedReceiverBase {
 public:
  CodedRepairReceiver(std::uint16_t seq, std::size_t total_codewords,
                      const PpArqConfig& config)
      : CodedReceiverBase(seq, total_codewords, config),
        estimator_(1.0 / (1.0 + config.repair_overhead)) {}

 protected:
  BitVec BuildRequestWire() override {
    const std::size_t n = BurstSizeForTarget(
        Deficit(), estimator_.DeliveryRate(), config().repair_target_completion,
        MaxRepairBurst(NumSourceSymbols()));
    estimator_.OnRequested(n);
    return EncodeCodedFeedbackWire(CodedFeedbackWire{seq(), {n}});
  }

  void IngestRepairFrame(const ReceivedRepairFrame& f) override {
    ConsumeSourceFrame(f, estimator_);
  }

 private:
  RepairDeliveryEstimator estimator_;
};

class CodedRepairStrategy : public RecoveryStrategy {
 public:
  explicit CodedRepairStrategy(const PpArqConfig& config) : config_(config) {
    const std::size_t symbol_bits =
        config.bits_per_codeword * config.codewords_per_fec_symbol;
    if (symbol_bits == 0 || symbol_bits % 8 != 0) {
      throw std::invalid_argument(
          "CodedRepairStrategy: FEC symbol must be whole octets");
    }
    if (config.fec_codec == fec::CodecKind::kReedSolomon &&
        (symbol_bits / 8) % 2 != 0) {
      throw std::invalid_argument(
          "CodedRepairStrategy: kReedSolomon needs even FEC symbol bytes "
          "(16-bit field elements)");
    }
  }

  const char* Name() const override { return "coded-repair"; }

  std::unique_ptr<RecoverySender> MakeSender(const BitVec& body_bits,
                                             std::uint16_t seq) const override {
    return std::make_unique<CodedRepairSender>(body_bits, seq, config_);
  }

  std::unique_ptr<RecoveryReceiver> MakeReceiver(
      std::uint16_t seq, std::size_t total_codewords) const override {
    return std::make_unique<CodedRepairReceiver>(seq, total_codewords,
                                                 config_);
  }

 private:
  PpArqConfig config_;
};

// ---------------------------------------------------------- collision-resolve

// The coded destination with the collision side door: equations the
// listener distilled from collided receptions are banked into the same
// decoder session, evictable as a group under the collision provenance
// tag. Everything else — feedback sizing, repair ingestion — is
// two-party coded repair unchanged, so composing the strategies costs
// nothing when no collision occurs.
class CollisionResolveReceiver : public CodedRepairReceiver,
                                 public CollisionEquationConsumer {
 public:
  using CodedRepairReceiver::CodedRepairReceiver;

  std::size_t IngestCollisionEquations(
      const std::vector<collide::CollisionEquation>& equations) override {
    EnsureSession();
    const std::size_t before = session().Deficit();
    for (const auto& eq : equations) {
      if (eq.coefs.size() != NumSourceSymbols()) continue;
      if (eq.data.size() != session().symbol_bytes()) continue;
      session().ConsumeEquation(eq.coefs, eq.data, eq.suspicion,
                                /*evictable=*/true,
                                /*party=*/fec::kCollisionResolvedParty);
    }
    const std::size_t gained = before - session().Deficit();
    TryFinish();
    return gained;
  }
};

class CollisionResolveStrategy : public RecoveryStrategy {
 public:
  explicit CollisionResolveStrategy(const PpArqConfig& config)
      : config_(config) {
    const std::size_t symbol_bits =
        config.bits_per_codeword * config.codewords_per_fec_symbol;
    if (symbol_bits == 0 || symbol_bits % 8 != 0) {
      throw std::invalid_argument(
          "CollisionResolveStrategy: FEC symbol must be whole octets");
    }
    // Collision equations are arbitrary sparse combinations (unit rows,
    // two-term XOR rows); only the elimination decoder consumes those.
    if (config.fec_codec != fec::CodecKind::kRlnc) {
      throw std::invalid_argument(
          "CollisionResolveStrategy: collision equations require "
          "CodecKind::kRlnc");
    }
  }

  const char* Name() const override { return "collision-resolve"; }

  std::unique_ptr<RecoverySender> MakeSender(const BitVec& body_bits,
                                             std::uint16_t seq) const override {
    return std::make_unique<CodedRepairSender>(body_bits, seq, config_);
  }

  std::unique_ptr<RecoveryReceiver> MakeReceiver(
      std::uint16_t seq, std::size_t total_codewords) const override {
    return std::make_unique<CollisionResolveReceiver>(seq, total_codewords,
                                                      config_);
  }

 private:
  PpArqConfig config_;
};

// ------------------------------------------------------------- relay-coded

// Destination of the generalized Crelay strategy: splits each round's
// deficit across the source and N relays in proportion to their
// observed repair-symbol delivery rates ("who is cheaper to hear"),
// then sizes each share for the target completion probability at that
// party's own rate. Relay shares are floored, so the source always
// absorbs the rounding remainder and gets at least one symbol of any
// nonzero deficit: its equations are correct by construction, so
// progress is guaranteed even against relays that stream only poison.
// With one relay the allocation is exactly the original two-way split.
class RelayCodedReceiver : public CodedReceiverBase {
 public:
  RelayCodedReceiver(std::uint16_t seq, std::size_t total_codewords,
                     const PpArqConfig& config)
      : CodedReceiverBase(seq, total_codewords, config),
        estimators_(1 + config.relay_parties,
                    RepairDeliveryEstimator(1.0 / (1.0 + config.repair_overhead))) {}

 protected:
  BitVec BuildRequestWire() override {
    const std::size_t deficit = Deficit();
    const std::size_t parties = estimators_.size();
    std::vector<double> rate(parties);
    double rate_sum = 0.0;
    for (std::size_t i = 0; i < parties; ++i) {
      rate[i] = estimators_[i].DeliveryRate();
      rate_sum += rate[i];
    }
    // Delivery-rate-weighted shares. The relay BLOC's share is floored
    // as a whole (largest-remainder within it), so per-relay rounding
    // cannot starve the bloc at small deficits; the source takes the
    // remainder, which keeps it >= 1 for any nonzero deficit (its rate
    // is positive, so the bloc's fraction is strictly below deficit) —
    // the correctness backstop against all-poison relays. With one
    // relay this is exactly the original two-way split.
    std::vector<std::size_t> share(parties, 0);
    const double relay_rate_sum = rate_sum - rate[0];
    const std::size_t relay_total =
        parties > 1 ? static_cast<std::size_t>(std::floor(
                          static_cast<double>(deficit) * relay_rate_sum /
                          rate_sum))
                    : 0;
    share[0] = deficit - relay_total;
    // Endgame escape: integer flooring hands a small deficit entirely
    // to the source, which livelocks when the direct path is dead (the
    // source estimator pinned at its floor) however healthy the relays
    // are. Ask the best relay for the deficit too — duplication costs
    // a symbol or two, only in this pathological state.
    if (relay_total == 0 && deficit > 0 && parties > 1 &&
        rate[0] <= RepairDeliveryEstimator::kFloor) {
      std::size_t best = 1;
      for (std::size_t i = 2; i < parties; ++i) {
        if (rate[i] > rate[best]) best = i;
      }
      share[best] = deficit;
    }
    if (relay_total > 0) {
      struct Remainder {
        double frac;
        std::size_t party;
      };
      std::vector<Remainder> remainders;
      std::size_t allotted = 0;
      for (std::size_t i = 1; i < parties; ++i) {
        const double quota =
            static_cast<double>(relay_total) * rate[i] / relay_rate_sum;
        share[i] = static_cast<std::size_t>(std::floor(quota));
        allotted += share[i];
        remainders.push_back({quota - std::floor(quota), i});
      }
      std::stable_sort(remainders.begin(), remainders.end(),
                       [](const Remainder& a, const Remainder& b) {
                         return a.frac > b.frac;
                       });
      for (std::size_t k = 0; allotted < relay_total; ++k, ++allotted) {
        ++share[remainders[k].party];
      }
    }
    const std::size_t cap = MaxRepairBurst(NumSourceSymbols());
    const double target = config().repair_target_completion;
    CodedFeedbackWire fb;
    fb.seq = seq();
    fb.requested.reserve(parties);
    for (std::size_t i = 0; i < parties; ++i) {
      const std::size_t n = BurstSizeForTarget(share[i], rate[i], target, cap);
      estimators_[i].OnRequested(n);
      fb.requested.push_back(n);
    }
    return EncodeCodedFeedbackWire(fb);
  }

  void IngestRepairFrame(const ReceivedRepairFrame& f) override {
    if (f.origin == 0) {
      ConsumeSourceFrame(f, estimators_[0]);
      return;
    }
    if (f.origin >= estimators_.size()) return;  // not on the roster
    // A relay equation spans only the symbols its mask names; its
    // correctness rests on the relay's own SoftPHY labeling, so it is
    // banked evictable under the relay-reported suspicion, with the
    // relay id as provenance so a poisoned relay's stream is evicted
    // as a group.
    if (f.coef_mask.size() != NumSourceSymbols()) return;
    std::vector<bool> have(f.coef_mask.size());
    for (std::size_t i = 0; i < have.size(); ++i) have[i] = f.coef_mask.Get(i);
    const std::size_t valid = ForEachValidRecord(f, [&](std::size_t k,
                                                        const BitVec& data) {
      // Record k's seed is counter-consecutive with the frame's base
      // seed INSIDE the origin's 24-bit partition (fec::PartySeed), so
      // the reconstruction wraps exactly as the relay's counter did.
      const std::uint32_t seed = fec::PartySeed(
          f.origin, fec::SeedCounter(f.aux) + static_cast<std::uint32_t>(k));
      session().ConsumeEquation(fec::MaskedCoefficients(seed, have),
                                data.ToBytes(), f.suspicion,
                                /*evictable=*/true, /*party=*/f.origin);
    });
    estimators_[f.origin].OnDelivered(valid);
  }

 private:
  std::vector<RepairDeliveryEstimator> estimators_;  // index = party id
};

// The overhearing relay: assembles its own (partial, possibly
// miss-corrupted) copy of the initial transmission, and answers the
// destination's broadcast feedback with masked RLNC equations over the
// symbols it trusts, seeded from its own partition of the seed space.
// When the session engine hands it a finite airtime budget it
// truncates its burst to fit and defers entirely once the round's
// budget is spent (ExOR-style: better-ranked relays were served
// first).
class RelayRepairParticipant : public RecoveryParticipant {
 public:
  RelayRepairParticipant(std::uint8_t relay_id, std::uint16_t seq,
                         std::size_t total_codewords,
                         const PpArqConfig& config)
      : config_(config),
        relay_id_(relay_id),
        seq_(seq),
        body_(total_codewords, config.bits_per_codeword) {
    if (relay_id == 0) {
      throw std::invalid_argument("relay id 0 is the source's partition");
    }
  }

  PartyRole role() const override { return PartyRole::kRelay; }

  void IngestInitial(const std::vector<phy::DecodedSymbol>& symbols) override {
    body_.Merge(symbols, config_.bits_per_codeword);
  }

  // Observed bottleneck quality: the fraction of FEC symbols this relay
  // trusts from its overheard copy. The session engine services relays
  // in descending order of this rank when a round's airtime is
  // budgeted.
  double RepairQuality() override {
    if (!body_.received) return 0.0;
    EnsureLabeled();
    if (have_.empty()) return 0.0;
    return static_cast<double>(num_trusted_) /
           static_cast<double>(have_.size());
  }

  std::vector<SessionMessage> HandleMessage(
      const DeliveredMessage& msg) override {
    if (msg.type != SessionMessageType::kFeedback || !body_.received) {
      return {};
    }
    const auto fb = DecodeCodedFeedbackWire(msg.feedback_wire);
    if (!fb.has_value() || fb->seq != seq_) return {};
    // This relay's requested count travels at index relay_id; a wire
    // with a shorter roster asks nothing of it.
    const std::size_t requested =
        relay_id_ < fb->requested.size() ? fb->requested[relay_id_] : 0;
    if (requested == 0) return {};
    EnsureLabeled();
    if (num_trusted_ == 0) return {};  // nothing usable overheard

    std::size_t count = std::min(requested, MaxRepairBurst(symbols_.size()));
    // Fit the burst to the round's remaining relay airtime: shed
    // records until the wire cost (records plus one reliable
    // descriptor per frame) is affordable, deferring outright when
    // nothing is. Skipped seeds are harmless — every frame names its
    // base seed explicitly.
    const std::size_t payload_bits = symbols_.front().size() * 8;
    const std::size_t descriptor_bits =
        kSeedBits + kOriginBits + kSuspicionBits + have_.size();
    const auto burst_cost = [&](std::size_t records) {
      return BatchedBurstWireBits(records, payload_bits, body_.bits.size(),
                                  descriptor_bits);
    };
    while (count > 0 && burst_cost(count) > msg.relay_budget_bits) --count;
    if (count == 0) return {};  // round budget spent: defer

    SessionMessage reply;
    reply.type = SessionMessageType::kRepair;
    reply.to = msg.from;
    BitVec mask;
    for (const bool h : have_) mask.PushBack(h);
    reply.frames = BatchRepairRecords(
        count, payload_bits, body_.bits.size(),
        config_.bits_per_codeword, [&](RepairFrame* frame) {
          const std::uint32_t seed = fec::PartySeed(relay_id_, counter_++);
          if (frame) {
            frame->aux = seed;
            frame->origin = relay_id_;
            frame->coef_mask = mask;
            frame->suspicion = suspicion_;
          }
          const fec::RepairSymbol repair =
              fec::MakeMaskedRepair(symbols_, have_, seed);
          return BitVec::FromBytes(repair.data);
        });
    reply.wire_bits = 0;
    for (const auto& frame : reply.frames) {
      reply.wire_bits += kSeedBits + kOriginBits + kSuspicionBits +
                         frame.coef_mask.size() + frame.bits.size();
    }
    // The budget fit above priced the burst before building it; if
    // BatchRepairRecords' packing ever diverges from burst_cost, the
    // budget the engine charges would drift from the bits on the air.
    assert(reply.wire_bits == burst_cost(count));
    return {std::move(reply)};
  }

 private:
  // Splits the overheard body into FEC symbols and labels each trusted
  // when every codeword clears the SoftPHY threshold; the reported
  // suspicion is the worst hint across the trusted span.
  void EnsureLabeled() {
    if (!symbols_.empty()) return;
    const std::size_t cps = config_.codewords_per_fec_symbol;
    symbols_ = fec::BodyToSymbols(body_.bits, config_.bits_per_codeword, cps);
    const auto labels = body_.Label(cps, config_.eta);
    have_ = labels.good;
    for (std::size_t s = 0; s < have_.size(); ++s) {
      if (!have_[s]) continue;
      ++num_trusted_;
      suspicion_ = std::max(suspicion_, labels.suspicion[s]);
    }
  }

  PpArqConfig config_;
  std::uint8_t relay_id_;
  std::uint16_t seq_;
  SoftPhyBody body_;
  std::vector<std::vector<std::uint8_t>> symbols_;
  std::vector<bool> have_;
  double suspicion_ = 0.0;
  std::size_t num_trusted_ = 0;
  std::uint32_t counter_ = 1;
};

class RelayCodedStrategy : public RecoveryStrategy {
 public:
  explicit RelayCodedStrategy(const PpArqConfig& config) : config_(config) {
    const std::size_t symbol_bits =
        config.bits_per_codeword * config.codewords_per_fec_symbol;
    if (symbol_bits == 0 || symbol_bits % 8 != 0) {
      throw std::invalid_argument(
          "RelayCodedStrategy: FEC symbol must be whole octets");
    }
    // Party ids must fit the 8-bit wire origin field and the party
    // count (source + relays) the 8-bit wire roster field.
    if (config.relay_parties == 0 ||
        config.relay_parties >= fec::kMaxRepairParties - 1) {
      throw std::invalid_argument(
          "RelayCodedStrategy: relay_parties must be in [1, 254]");
    }
    // Relay equations are dense masked combinations; an erasure code
    // cannot consume them (fec/coded_repair.h).
    if (config.fec_codec != fec::CodecKind::kRlnc) {
      throw std::invalid_argument(
          "RelayCodedStrategy: relay repair requires CodecKind::kRlnc");
    }
  }

  const char* Name() const override { return "relay-coded-repair"; }

  // The source is the coded-repair sender unchanged: its seed counter
  // is party 0's partition, and it parses the leading (seq, requested)
  // fields the relay wire shares with the coded wire.
  std::unique_ptr<RecoverySender> MakeSender(const BitVec& body_bits,
                                             std::uint16_t seq) const override {
    return std::make_unique<CodedRepairSender>(body_bits, seq, config_);
  }

  std::unique_ptr<RecoveryReceiver> MakeReceiver(
      std::uint16_t seq, std::size_t total_codewords) const override {
    return std::make_unique<RelayCodedReceiver>(seq, total_codewords, config_);
  }

  std::unique_ptr<RecoveryParticipant> MakeRelayParticipant(
      std::uint8_t relay_id, std::uint16_t seq,
      std::size_t total_codewords) const override {
    if (relay_id == 0 || relay_id > config_.relay_parties) {
      throw std::invalid_argument(
          "MakeRelayParticipant: relay id outside the configured roster");
    }
    return std::make_unique<RelayRepairParticipant>(relay_id, seq,
                                                    total_codewords, config_);
  }

 private:
  PpArqConfig config_;
};

}  // namespace

BitVec EncodeCodedFeedbackWire(const CodedFeedbackWire& feedback) {
  if (feedback.requested.empty() ||
      feedback.requested.size() >= fec::kMaxRepairParties) {
    throw std::invalid_argument(
        "EncodeCodedFeedbackWire: party count must be in [1, 255]");
  }
  BitVec wire;
  wire.AppendUint(feedback.seq, kSeqBits);
  wire.AppendUint(feedback.requested.size(), kPartyCountBits);
  for (const std::size_t n : feedback.requested) {
    if (n > 0xFFFF) {
      throw std::invalid_argument(
          "EncodeCodedFeedbackWire: requested count exceeds 16 bits");
    }
    wire.AppendUint(n, kCountBits);
  }
  return wire;
}

std::optional<CodedFeedbackWire> DecodeCodedFeedbackWire(const BitVec& wire) {
  if (wire.size() < kSeqBits + kPartyCountBits) return std::nullopt;
  CodedFeedbackWire out;
  out.seq = static_cast<std::uint16_t>(wire.ReadUint(0, kSeqBits));
  const std::size_t parties = wire.ReadUint(kSeqBits, kPartyCountBits);
  if (parties == 0) return std::nullopt;
  if (wire.size() < kSeqBits + kPartyCountBits + parties * kCountBits) {
    return std::nullopt;  // truncated roster
  }
  out.requested.reserve(parties);
  for (std::size_t i = 0; i < parties; ++i) {
    out.requested.push_back(
        wire.ReadUint(kSeqBits + kPartyCountBits + i * kCountBits,
                      kCountBits));
  }
  return out;
}

std::unique_ptr<RecoveryStrategy> MakeRecoveryStrategy(
    const PpArqConfig& config) {
  switch (config.recovery) {
    case RecoveryMode::kChunkRetransmit:
      return std::make_unique<ChunkRetransmitStrategy>(config);
    case RecoveryMode::kCodedRepair:
      return std::make_unique<CodedRepairStrategy>(config);
    case RecoveryMode::kRelayCodedRepair:
      return std::make_unique<RelayCodedStrategy>(config);
    case RecoveryMode::kCollisionResolve:
      return std::make_unique<CollisionResolveStrategy>(config);
  }
  throw std::logic_error("MakeRecoveryStrategy: unknown mode");
}

}  // namespace ppr::arq
