#include "arq/recovery_strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "arq/feedback.h"
#include "common/crc.h"
#include "fec/coded_repair.h"
#include "fec/rlnc.h"

namespace ppr::arq {
namespace {

constexpr unsigned kSeqBits = 16;
constexpr unsigned kCountBits = 16;
constexpr unsigned kSeedBits = 32;
constexpr double kForcedBadHint = std::numeric_limits<double>::infinity();

// ------------------------------------------------------------------ chunk

class ChunkRetransmitSender : public RecoverySender {
 public:
  ChunkRetransmitSender(const BitVec& body, std::uint16_t seq,
                        const PpArqConfig& config)
      : config_(config), sender_(body, seq, config) {}

  RepairPlan HandleFeedback(const BitVec& feedback_wire) override {
    RepairPlan plan;
    const auto decoded =
        DecodeFeedback(feedback_wire, sender_.total_codewords(),
                       config_.bits_per_codeword, config_.checksum_bits);
    if (!decoded.has_value()) {
      // Feedback frames are reliable at this layer; an unparsable wire
      // is a codec bug, not channel damage.
      throw std::logic_error("feedback round-trip failed");
    }
    const RetransmissionPacket retx = sender_.HandleFeedback(*decoded);
    plan.wire_bits =
        EncodeRetransmission(retx, sender_.total_codewords(),
                             config_.bits_per_codeword)
            .size();
    plan.frames.reserve(retx.segments.size());
    for (const auto& seg : retx.segments) {
      plan.frames.push_back(RepairFrame{seg.range, 0, seg.bits});
    }
    return plan;
  }

 private:
  PpArqConfig config_;
  PpArqSender sender_;
};

class ChunkRetransmitReceiver : public RecoveryReceiver {
 public:
  ChunkRetransmitReceiver(std::uint16_t seq, std::size_t total_codewords,
                          const PpArqConfig& config)
      : receiver_(seq, total_codewords, config) {}

  void IngestInitial(const std::vector<phy::DecodedSymbol>& symbols) override {
    receiver_.IngestInitial(symbols);
  }

  bool Complete() const override { return receiver_.Complete(); }

  std::optional<BitVec> BuildFeedbackWire() override {
    const auto fb = receiver_.BuildFeedback();
    if (!fb.has_value()) return std::nullopt;
    return receiver_.EncodeFeedbackWire(*fb);
  }

  void IngestRepair(const std::vector<ReceivedRepairFrame>& frames) override {
    std::vector<ReceivedSegment> segments;
    segments.reserve(frames.size());
    for (const auto& f : frames) {
      segments.push_back(ReceivedSegment{f.range, f.symbols});
    }
    receiver_.IngestRetransmission(segments);
  }

  BitVec AssembledPayload() const override {
    return receiver_.AssembledPayload();
  }

  std::size_t rounds() const override { return receiver_.rounds(); }

 private:
  PpArqReceiver receiver_;
};

class ChunkRetransmitStrategy : public RecoveryStrategy {
 public:
  explicit ChunkRetransmitStrategy(const PpArqConfig& config)
      : config_(config) {}

  const char* Name() const override { return "chunk-retransmit"; }

  std::unique_ptr<RecoverySender> MakeSender(const BitVec& body_bits,
                                             std::uint16_t seq) const override {
    return std::make_unique<ChunkRetransmitSender>(body_bits, seq, config_);
  }

  std::unique_ptr<RecoveryReceiver> MakeReceiver(
      std::uint16_t seq, std::size_t total_codewords) const override {
    return std::make_unique<ChunkRetransmitReceiver>(seq, total_codewords,
                                                     config_);
  }

 private:
  PpArqConfig config_;
};

// ------------------------------------------------------------------ coded

struct CodedFeedback {
  std::uint16_t seq = 0;
  std::size_t deficit = 0;
};

std::optional<CodedFeedback> DecodeCodedFeedback(const BitVec& wire) {
  if (wire.size() < kSeqBits + kCountBits) return std::nullopt;
  CodedFeedback out;
  out.seq = static_cast<std::uint16_t>(wire.ReadUint(0, kSeqBits));
  out.deficit = wire.ReadUint(kSeqBits, kCountBits);
  return out;
}

class CodedRepairSender : public RecoverySender {
 public:
  CodedRepairSender(const BitVec& body, std::uint16_t seq,
                    const PpArqConfig& config)
      : config_(config),
        seq_(seq),
        body_bits_(body.size()),
        encoder_(fec::BodyToSymbols(body, config.bits_per_codeword,
                                    config.codewords_per_fec_symbol)) {}

  RepairPlan HandleFeedback(const BitVec& feedback_wire) override {
    RepairPlan plan;
    const auto fb = DecodeCodedFeedback(feedback_wire);
    if (!fb.has_value()) {
      throw std::logic_error("coded feedback round-trip failed");
    }
    if (fb->seq != seq_ || fb->deficit == 0) return plan;
    // Size the repair burst by the erasure estimate plus headroom for
    // symbols the channel will corrupt.
    const std::size_t deficit = std::min(fb->deficit, encoder_.num_source());
    const auto headroom = static_cast<std::size_t>(
        std::ceil(static_cast<double>(deficit) * config_.repair_overhead));
    const std::size_t count = deficit + headroom;
    // Symbols ride batched repair packets (S-PRAC style): record k uses
    // seed base+k and carries its own CRC-32, so a partial collision
    // costs only the records it actually hits. No packet exceeds the
    // original body size — carriers that bound frame length (e.g. the
    // waveform pipeline's max_payload_octets) must keep accepting
    // repair frames whenever they accepted the initial transmission.
    const std::size_t record_bits = encoder_.symbol_bytes() * 8 + 32;
    const std::size_t per_frame =
        std::max<std::size_t>(1, body_bits_ / record_bits);
    plan.wire_bits = kSeqBits + kCountBits;
    for (std::size_t done = 0; done < count;) {
      const std::size_t batch = std::min(per_frame, count - done);
      const std::uint32_t base_seed = next_seed_;
      BitVec bits;
      for (std::size_t k = 0; k < batch; ++k) {
        const fec::RepairSymbol repair = encoder_.MakeRepair(next_seed_++);
        const BitVec data = BitVec::FromBytes(repair.data);
        bits.AppendBits(data);
        bits.AppendUint(Crc32Bits(data), 32);
      }
      plan.wire_bits += kSeedBits + bits.size();
      plan.frames.push_back(RepairFrame{
          CodewordRange{0, bits.size() / config_.bits_per_codeword},
          base_seed, std::move(bits)});
      done += batch;
    }
    return plan;
  }

 private:
  PpArqConfig config_;
  std::uint16_t seq_;
  std::size_t body_bits_;
  fec::RlncEncoder encoder_;
  std::uint32_t next_seed_ = 1;
};

class CodedRepairReceiver : public RecoveryReceiver {
 public:
  CodedRepairReceiver(std::uint16_t seq, std::size_t total_codewords,
                      const PpArqConfig& config)
      : config_(config),
        seq_(seq),
        bits_(total_codewords * config.bits_per_codeword, false),
        hints_(total_codewords, kForcedBadHint) {
    if (total_codewords * config.bits_per_codeword <= 32) {
      throw std::invalid_argument(
          "CodedRepairReceiver: body must exceed the 32-bit trailing CRC");
    }
  }

  void IngestInitial(const std::vector<phy::DecodedSymbol>& symbols) override {
    if (symbols.size() != hints_.size()) {
      throw std::invalid_argument("IngestInitial: codeword count mismatch");
    }
    const std::size_t bpc = config_.bits_per_codeword;
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      if (symbols[i].hint <= hints_[i]) {
        hints_[i] = symbols[i].hint;
        for (std::size_t b = 0; b < bpc; ++b) {
          bits_.Set(i * bpc + b, (symbols[i].symbol >> (bpc - 1 - b)) & 1u);
        }
      }
    }
    received_anything_ = true;
  }

  bool Complete() const override {
    if (decoded_ok_) return true;
    if (!received_anything_) return false;
    return BodyCrcOk(bits_);
  }

  std::optional<BitVec> BuildFeedbackWire() override {
    if (Complete()) return std::nullopt;
    ++rounds_;
    EnsureSession();
    // A decodable-but-wrong basis (pure SoftPHY miss, no erasures) is
    // resolved here: TryFinish evicts suspects, growing the deficit.
    TryFinish();
    if (Complete()) return std::nullopt;
    BitVec wire;
    wire.AppendUint(seq_, kSeqBits);
    wire.AppendUint(std::min<std::size_t>(session_->Deficit(), 0xFFFF),
                    kCountBits);
    return wire;
  }

  void IngestRepair(const std::vector<ReceivedRepairFrame>& frames) override {
    if (!session_.has_value() || decoded_ok_) return;
    const std::size_t payload_bits = session_->symbol_bytes() * 8;
    const std::size_t record_bits = payload_bits + 32;
    for (const auto& f : frames) {
      BitVec rb;
      for (const auto& s : f.symbols) {
        rb.AppendUint(s.symbol,
                      static_cast<unsigned>(config_.bits_per_codeword));
      }
      // A frame carries a batch of [data || CRC-32] records; record k
      // was generated with seed aux+k. Corrupted records are dropped
      // individually.
      const std::size_t count = rb.size() / record_bits;
      for (std::size_t k = 0; k < count; ++k) {
        const BitVec data = rb.Slice(k * record_bits, payload_bits);
        const auto crc = static_cast<std::uint32_t>(
            rb.ReadUint(k * record_bits + payload_bits, 32));
        if (Crc32Bits(data) != crc) continue;
        session_->ConsumeRepair(fec::RepairSymbol{
            f.aux + static_cast<std::uint32_t>(k), data.ToBytes()});
      }
    }
    TryFinish();
  }

  BitVec AssembledPayload() const override {
    return bits_.Slice(0, bits_.size() - 32);
  }

  std::size_t rounds() const override { return rounds_; }

 private:
  bool BodyCrcOk(const BitVec& body) const {
    const std::size_t payload_bits = body.size() - 32;
    const auto stored =
        static_cast<std::uint32_t>(body.ReadUint(payload_bits, 32));
    return Crc32Bits(body.Slice(0, payload_bits)) == stored;
  }

  void EnsureSession() {
    if (session_.has_value()) return;
    const std::size_t cps = config_.codewords_per_fec_symbol;
    auto symbols =
        fec::BodyToSymbols(bits_, config_.bits_per_codeword, cps);
    std::vector<bool> good(symbols.size(), true);
    std::vector<double> suspicion(symbols.size(), 0.0);
    for (std::size_t cw = 0; cw < hints_.size(); ++cw) {
      const std::size_t s = cw / cps;
      if (hints_[cw] > config_.eta) good[s] = false;
      suspicion[s] = std::max(suspicion[s], hints_[cw]);
    }
    session_.emplace(std::move(symbols), std::move(good),
                     std::move(suspicion));
  }

  void TryFinish() {
    if (!session_.has_value() || decoded_ok_) return;
    while (session_->CanDecode()) {
      const BitVec body = fec::SymbolsToBody(session_->Decode(), bits_.size());
      if (BodyCrcOk(body)) {
        bits_ = body;
        decoded_ok_ = true;
        return;
      }
      // Wrong basis: a confident-but-wrong systematic row (SoftPHY
      // miss). Distrust the most suspect rows and keep consuming rank.
      if (session_->EvictSuspects() == 0) return;
    }
  }

  PpArqConfig config_;
  std::uint16_t seq_;
  BitVec bits_;
  std::vector<double> hints_;
  std::optional<fec::CodedRepairSession> session_;
  bool received_anything_ = false;
  bool decoded_ok_ = false;
  std::size_t rounds_ = 0;
};

class CodedRepairStrategy : public RecoveryStrategy {
 public:
  explicit CodedRepairStrategy(const PpArqConfig& config) : config_(config) {
    const std::size_t symbol_bits =
        config.bits_per_codeword * config.codewords_per_fec_symbol;
    if (symbol_bits == 0 || symbol_bits % 8 != 0) {
      throw std::invalid_argument(
          "CodedRepairStrategy: FEC symbol must be whole octets");
    }
  }

  const char* Name() const override { return "coded-repair"; }

  std::unique_ptr<RecoverySender> MakeSender(const BitVec& body_bits,
                                             std::uint16_t seq) const override {
    return std::make_unique<CodedRepairSender>(body_bits, seq, config_);
  }

  std::unique_ptr<RecoveryReceiver> MakeReceiver(
      std::uint16_t seq, std::size_t total_codewords) const override {
    return std::make_unique<CodedRepairReceiver>(seq, total_codewords,
                                                 config_);
  }

 private:
  PpArqConfig config_;
};

}  // namespace

std::unique_ptr<RecoveryStrategy> MakeRecoveryStrategy(
    const PpArqConfig& config) {
  switch (config.recovery) {
    case RecoveryMode::kChunkRetransmit:
      return std::make_unique<ChunkRetransmitStrategy>(config);
    case RecoveryMode::kCodedRepair:
      return std::make_unique<CodedRepairStrategy>(config);
  }
  throw std::logic_error("MakeRecoveryStrategy: unknown mode");
}

}  // namespace ppr::arq
