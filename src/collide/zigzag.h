// The two-party ZigZag-style iterative stripper.
//
// Given two captures of the same (A, B) packet pair colliding at
// DIFFERENT offsets, the clean region of one capture resolves
// codewords that sit inside the other capture's overlap; subtracting
// (XOR at chip level) the known party's codeword from the superposed
// chip word leaves the other party's codeword plus noise, which
// despreads with a genuine Hamming-distance confidence. Each accepted
// residual decode extends the known region, which unlocks the next
// position in the OTHER capture — the zigzag. SoftPHY confidences
// bound every step: a residual decode is accepted only when its own
// hint clears `max_hint` AND the accumulated suspicion of the chain
// that produced it stays under `max_chain_suspicion`, so a noisy
// region stops the chain cleanly instead of silently propagating
// garbage (the ledger's algebraic path then takes over).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "collide/capture.h"
#include "phy/chip_sequences.h"

namespace ppr::collide {

struct StripConfig {
  // A residual (or clean) decode is trusted only when its chip Hamming
  // distance is at most this.
  int max_hint = 4;
  // A stripping chain abandons once its accumulated suspicion (sum of
  // the hints along the chain that produced a value) exceeds this.
  double max_chain_suspicion = 16.0;
  std::size_t max_rounds = 64;
};

struct KnownNibble {
  bool known = false;
  bool via_strip = false;  // resolved by a residual decode (not a clean region)
  std::uint8_t value = 0;
  // Accumulated chain suspicion: the clean seed's hint plus every
  // residual-decode hint along the chain to this position.
  double suspicion = 0.0;
};

struct StripResult {
  std::vector<KnownNibble> a;  // one per A codeword
  std::vector<KnownNibble> b;  // one per B codeword
  std::size_t rounds = 0;      // full passes over both captures
  std::size_t stripped = 0;    // residual decodes accepted
  bool a_complete = false;
  bool b_complete = false;
  // Bailed with unresolved positions remaining (low confidence or an
  // unobservable span): the clean abandon the ledger's banking path
  // picks up.
  bool abandoned = false;
};

// Runs the stripper over two captures of the same pair. The captures
// must agree on a_codewords/b_codewords and should have distinct
// offsets (with equal offsets the captures carry identical geometry,
// so only single-capture cancellation chains run — legal, just
// weaker).
StripResult StripPair(const phy::ChipCodebook& codebook,
                      const CollisionCapture& first,
                      const CollisionCapture& second,
                      const StripConfig& config);

}  // namespace ppr::collide
