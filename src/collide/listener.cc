#include "collide/listener.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "collide/ledger.h"
#include "common/bitvec.h"
#include "obs/obs.h"

namespace ppr::collide {

CollisionStats& CollisionStats::operator+=(const CollisionStats& o) {
  episodes_seen += o.episodes_seen;
  codewords_stripped += o.codewords_stripped;
  equations_banked += o.equations_banked;
  cross_cancelled += o.cross_cancelled;
  episodes_abandoned += o.episodes_abandoned;
  strip_rounds += o.strip_rounds;
  pairs_resolved += o.pairs_resolved;
  return *this;
}

ResolvedCollision CollisionListener::Resolve(const phy::ChipCodebook& codebook,
                                             const CollisionEpisode& episode) {
  ResolvedCollision r;
  r.strip = StripPair(codebook, episode.first, episode.second, config_.strip);
  r.a_resolved = r.strip.a_complete;
  r.b_resolved = r.strip.b_complete;

  const std::size_t cps = config_.codewords_per_fec_symbol;
  const std::size_t a_cw = episode.first.a_codewords;
  const bool aligned = cps != 0 && a_cw % cps == 0;
  if (aligned) {
    const std::size_t num_symbols = a_cw / cps;
    const auto in_first_overlap = [&](std::size_t i) {
      return i >= episode.first.overlap_begin && i < episode.first.overlap_end;
    };
    for (std::size_t s = 0; s < num_symbols; ++s) {
      bool complete = true;
      bool novel = false;
      double worst = 0.0;
      for (std::size_t i = s * cps; i < (s + 1) * cps; ++i) {
        const KnownNibble& k = r.strip.a[i];
        complete = complete && k.known;
        novel = novel || k.via_strip || in_first_overlap(i);
        worst = std::max(worst, k.suspicion);
      }
      if (!complete || !novel) continue;
      CollisionEquation eq;
      eq.coefs.assign(num_symbols, 0);
      eq.coefs[s] = 1;
      BitVec packed;
      for (std::size_t i = s * cps; i < (s + 1) * cps; ++i) {
        packed.AppendUint(r.strip.a[i].value, 4);
      }
      eq.data = packed.ToBytes();
      eq.suspicion = worst;
      r.equations.push_back(std::move(eq));
    }

    CollisionLedger ledger(a_cw, cps);
    ledger.Bank(episode.first);
    ledger.Bank(episode.second);
    std::vector<CollisionEquation> cross =
        ledger.CrossCancel(codebook, r.strip, config_.strip);
    stats_.cross_cancelled += cross.size();
    for (CollisionEquation& eq : cross) r.equations.push_back(std::move(eq));
  }

  ++stats_.episodes_seen;
  stats_.codewords_stripped += r.strip.stripped;
  stats_.equations_banked += r.equations.size();
  stats_.strip_rounds += r.strip.rounds;
  if (r.strip.abandoned) ++stats_.episodes_abandoned;
  if (r.a_resolved && r.b_resolved) ++stats_.pairs_resolved;

  obs::Count("collide.seen");
  obs::Count("collide.stripped", r.strip.stripped);
  obs::Count("collide.banked", r.equations.size());
  if (r.strip.abandoned) obs::Count("collide.abandoned");
  obs::TraceComplete("collide.strip", "collide", 0,
                     std::uint64_t{1} + r.strip.rounds, [&] {
                       return obs::TraceArgs{
                           {"rounds",
                            static_cast<std::int64_t>(r.strip.rounds)},
                           {"stripped",
                            static_cast<std::int64_t>(r.strip.stripped)},
                           {"abandoned",
                            static_cast<std::int64_t>(r.strip.abandoned)}};
                     });
  return r;
}

}  // namespace ppr::collide
