#include "collide/ledger.h"

#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/bitvec.h"

namespace ppr::collide {

CollisionLedger::CollisionLedger(std::size_t a_codewords,
                                 std::size_t codewords_per_fec_symbol)
    : a_codewords_(a_codewords),
      codewords_per_symbol_(codewords_per_fec_symbol) {
  if (codewords_per_symbol_ == 0 ||
      a_codewords_ % codewords_per_symbol_ != 0) {
    throw std::invalid_argument(
        "CollisionLedger: FEC symbols must tile the body exactly");
  }
}

void CollisionLedger::Bank(const CollisionCapture& capture) {
  if (capture.a_codewords != a_codewords_) {
    throw std::invalid_argument("CollisionLedger: capture shape mismatch");
  }
  captures_.push_back(BankedCapture{capture.offset, capture.overlap_begin,
                                    capture.overlap_end,
                                    capture.overlap_chips});
}

std::vector<CollisionEquation> CollisionLedger::CrossCancel(
    const phy::ChipCodebook& codebook, const StripResult& strip,
    const StripConfig& config) const {
  std::vector<CollisionEquation> out;
  const std::size_t cps = codewords_per_symbol_;
  const std::size_t num_symbols = a_codewords_ / cps;

  const auto symbol_resolved = [&](std::size_t s) {
    for (std::size_t i = s * cps; i < (s + 1) * cps; ++i) {
      if (i >= strip.a.size() || !strip.a[i].known) return false;
    }
    return true;
  };

  std::set<std::pair<std::size_t, std::size_t>> emitted;
  struct Constraint {
    std::uint8_t value = 0;
    int distance = 0;
  };
  for (std::size_t p = 0; p < captures_.size(); ++p) {
    for (std::size_t q = p + 1; q < captures_.size(); ++q) {
      const BankedCapture& lo =
          captures_[p].offset <= captures_[q].offset ? captures_[p]
                                                     : captures_[q];
      const BankedCapture& hi = &lo == &captures_[p] ? captures_[q]
                                                     : captures_[p];
      if (lo.offset == hi.offset) continue;
      const std::size_t delta = hi.offset - lo.offset;
      if (delta % cps != 0) continue;
      const std::size_t sym_delta = delta / cps;

      // Best XOR constraint per lower A position: the shared B
      // codeword cancels wherever both captures observed it.
      std::vector<std::optional<Constraint>> xr(a_codewords_);
      for (std::size_t i = lo.begin; i < lo.end; ++i) {
        const std::size_t partner = i + delta;
        if (partner < hi.begin || partner >= hi.end) continue;
        const phy::ChipWord w =
            lo.chips[i - lo.begin] ^ hi.chips[partner - hi.begin];
        int distance = 0;
        const std::uint8_t x = DecodeXorNibble(codebook, w, &distance);
        if (distance > config.max_hint) continue;
        if (!xr[i].has_value() || distance < xr[i]->distance) {
          xr[i] = Constraint{x, distance};
        }
      }

      for (std::size_t s = 0; s + sym_delta < num_symbols; ++s) {
        const std::size_t s2 = s + sym_delta;
        if (emitted.count({s, s2}) != 0) continue;
        if (symbol_resolved(s) && symbol_resolved(s2)) continue;
        bool covered = true;
        for (std::size_t i = s * cps; covered && i < (s + 1) * cps; ++i) {
          covered = xr[i].has_value();
        }
        if (!covered) continue;

        CollisionEquation eq;
        eq.coefs.assign(num_symbols, 0);
        eq.coefs[s] = 1;
        eq.coefs[s2] = 1;
        BitVec packed;
        int worst = 0;
        for (std::size_t i = s * cps; i < (s + 1) * cps; ++i) {
          packed.AppendUint(xr[i]->value, 4);
          if (xr[i]->distance > worst) worst = xr[i]->distance;
        }
        eq.data = packed.ToBytes();
        eq.suspicion = static_cast<double>(worst);
        out.push_back(std::move(eq));
        emitted.insert({s, s2});
      }
    }
  }
  return out;
}

}  // namespace ppr::collide
