#include "collide/runner.h"

#include <stdexcept>

#include "arq/pp_arq.h"
#include "obs/obs.h"

namespace ppr::collide {

CollisionExchangeOutcome RunCollisionRecoveryExchange(
    const BitVec& payload_bits, const arq::PpArqConfig& config,
    const arq::RecoveryStrategy& strategy,
    const arq::BodyChannel& repair_channel,
    const CollisionEpisodeParams& episode_params, Rng& episode_rng,
    const CollisionListenerConfig& listener_config, bool resolve,
    std::size_t max_rounds) {
  CollisionExchangeOutcome out;
  const phy::ChipCodebook codebook;
  const std::uint16_t seq = 1;
  const BitVec body = arq::PpArqSender::MakeBody(payload_bits);

  const CollisionEpisode episode =
      DrawCollisionEpisode(codebook, body, episode_params, episode_rng);

  auto sender = strategy.MakeSender(body, seq);
  auto receiver = strategy.MakeReceiver(seq, body.size() / 4);

  // Both collided copies of A crossed the air whether or not anything
  // is distilled from them, so both legs pay the same initial budget.
  out.totals.data_transmissions = 2;
  out.totals.forward_bits = 2 * body.size();
  receiver->IngestInitial(InitialSymbolsFromCapture(episode.first));

  if (resolve) {
    auto* consumer = dynamic_cast<arq::CollisionEquationConsumer*>(
        receiver.get());
    if (consumer == nullptr) {
      throw std::invalid_argument(
          "RunCollisionRecoveryExchange: strategy's receiver does not "
          "consume collision equations (use RecoveryMode::kCollisionResolve)");
    }
    CollisionListener listener(listener_config);
    const ResolvedCollision resolved = listener.Resolve(codebook, episode);
    out.collide = listener.stats();
    out.resolved_pair = resolved.a_resolved && resolved.b_resolved;
    out.equations_banked = resolved.equations.size();
    out.rank_gained = consumer->IngestCollisionEquations(resolved.equations);
    obs::Count("collide.rank_gained", out.rank_gained);
  }

  // The standard coded feedback loop finishes the packet.
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const auto feedback = receiver->BuildFeedbackWire();
    if (!feedback.has_value()) break;
    ++out.rounds;
    out.totals.feedback_bits += feedback->size();
    const arq::RepairPlan plan = sender->HandleFeedback(*feedback);
    out.totals.forward_bits += plan.wire_bits;
    if (plan.wire_bits > 0) {
      out.totals.retransmission_bits.push_back(plan.wire_bits);
    }
    if (plan.frames.empty()) continue;
    ++out.totals.data_transmissions;
    std::vector<arq::ReceivedRepairFrame> received;
    received.reserve(plan.frames.size());
    for (const auto& f : plan.frames) {
      arq::ReceivedRepairFrame rf(f.range, f.aux, repair_channel(f.bits));
      rf.origin = f.origin;
      rf.coef_mask = f.coef_mask;
      rf.suspicion = f.suspicion;
      received.push_back(std::move(rf));
    }
    receiver->IngestRepair(received);
  }
  out.totals.success = receiver->Complete();
  return out;
}

}  // namespace ppr::collide
