// One PP-ARQ packet exchange whose initial transmission is a two-party
// double collision: the packet under recovery (A) collides twice with
// the same interfering packet (B) at different offsets, the collision
// listener distills equations from the pair of captures, and the
// coded-repair feedback loop finishes whatever rank is still missing.
// The discard baseline — today's behavior — is the same exchange with
// `resolve` off: the receiver keeps only the clean codewords of the
// first capture and pays for the rest in repair symbols.
#pragma once

#include <cstddef>

#include "arq/link_sim.h"
#include "arq/recovery_strategy.h"
#include "collide/capture.h"
#include "collide/listener.h"
#include "common/bitvec.h"
#include "common/rng.h"

namespace ppr::collide {

struct CollisionExchangeOutcome {
  arq::ArqRunStats totals;
  std::size_t rounds = 0;
  CollisionStats collide;
  // Both packets of the double collision fully resolved by stripping.
  bool resolved_pair = false;
  std::size_t equations_banked = 0;
  // Decoder rank the banked equations contributed before any repair
  // symbol crossed the air.
  std::size_t rank_gained = 0;
};

// `strategy` must come from a kCollisionResolve config (its receiver
// implements CollisionEquationConsumer); `episode_rng` drives every
// collision draw (seed it from arq::SeedForCollisionRound so runs are
// schedule-invariant); `repair_channel` carries the repair exchange.
// Both collided transmissions are charged to the forward budget — the
// discard and resolve legs pay identical initial airtime, so any
// repair-bit difference is pure collision-recovery yield.
CollisionExchangeOutcome RunCollisionRecoveryExchange(
    const BitVec& payload_bits, const arq::PpArqConfig& config,
    const arq::RecoveryStrategy& strategy,
    const arq::BodyChannel& repair_channel,
    const CollisionEpisodeParams& episode_params, Rng& episode_rng,
    const CollisionListenerConfig& listener_config, bool resolve,
    std::size_t max_rounds = 32);

}  // namespace ppr::collide
