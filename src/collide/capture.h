// Two-party collision captures: the chip-level record of one packet's
// reception while a second transmission overlapped it on the shared
// medium.
//
// The medium layers (ppr/medium.h, arq/chip_medium.h) draw interferer
// content, phase, and overlap spans explicitly, so a collision is
// simulable rather than abstract: within the overlap the received chip
// word is the XOR superposition of both parties' DSSS codewords (the
// binary-adder collision channel of "Collision Helps", ParandehGheibi
// et al.), plus the usual per-chip noise flips. Outside the overlap
// each party's codewords despread cleanly. A CollisionCapture keeps
// both views: clean-region DecodedSymbols (with genuine SoftPHY hints)
// and the raw superposed chip words of the overlap — the input the
// ZigZag stripper (collide/zigzag.h) and the algebraic ledger
// (collide/ledger.h) consume.
//
// Geometry (codeword granular): packet A occupies codewords
// [0, a_codewords); interferer B starts `offset` codewords into A and
// occupies [offset, offset + b_codewords). The overlap is
// [offset, min(a_codewords, offset + b_codewords)); B codewords past
// A's end despread cleanly as B's tail.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "common/rng.h"
#include "phy/chip_sequences.h"
#include "phy/despreader.h"

namespace ppr::collide {

struct CollisionCapture {
  std::size_t offset = 0;        // A codewords transmitted before B starts
  std::size_t a_codewords = 0;
  std::size_t b_codewords = 0;
  // One entry per A codeword: clean positions carry the despread
  // DecodedSymbol; positions inside the overlap carry an infinite hint
  // (the superposition is not decodable as A alone).
  std::vector<phy::DecodedSymbol> a_symbols;
  // Raw superposed chip words for A codewords [overlap_begin,
  // overlap_end): chips(A_i) ^ chips(B_{i - offset}) ^ noise.
  std::size_t overlap_begin = 0;
  std::size_t overlap_end = 0;
  std::vector<phy::ChipWord> overlap_chips;
  // Clean despreads of B's codewords past A's end: entry t is B
  // codeword (a_codewords - offset + t). Empty when B ends inside A.
  std::vector<phy::DecodedSymbol> b_tail;

  std::size_t OverlapCodewords() const { return overlap_end - overlap_begin; }
  // B codeword index superposed at A codeword `a_index` (requires
  // overlap_begin <= a_index < overlap_end).
  std::size_t BIndexAt(std::size_t a_index) const { return a_index - offset; }
  // First B codeword index covered by b_tail.
  std::size_t TailBegin() const { return a_codewords - offset; }
};

// Simulates one capture of A's body colliding with B's body at the
// given codeword offset (0 <= offset < a_codewords, b non-empty).
// Per-codeword noise flips each chip with probability `chip_error_p`;
// draws are taken from `rng` in a fixed order (A codewords first, then
// B's tail), so a capture is a pure function of (bodies, offset, rng
// state). Bodies are 4-bit-codeword aligned (bits % 4 == 0).
CollisionCapture SimulateCollisionCapture(const phy::ChipCodebook& codebook,
                                          const BitVec& a_body,
                                          const BitVec& b_body,
                                          std::size_t offset,
                                          double chip_error_p, Rng& rng);

// The ARQ receiver's view of A from one collided capture: the clean
// decodes verbatim, overlap positions forced bad (infinite hint), so
// IngestInitial treats the superposed span exactly like an impairment
// burst it must repair.
std::vector<phy::DecodedSymbol> InitialSymbolsFromCapture(
    const CollisionCapture& capture);

// Decodes the XOR value x ^ y from a superposed chip word
// w ~ chips(x) ^ chips(y) (+ noise) by searching all 256 codeword
// pairs: the returned value is the nibble XOR of the closest pair and
// `*distance` its chip Hamming distance — a genuine SoftPHY-style
// confidence for the superposition itself. The DSSS codebook is not
// GF(2)-linear, so this pairwise search is how a chip-level XOR of two
// unknown codewords becomes a DATA-level XOR constraint (the raw
// material of the ledger's cross-cancelled GF(256) equations).
std::uint8_t DecodeXorNibble(const phy::ChipCodebook& codebook,
                             phy::ChipWord word, int* distance);

// One ZigZag episode: the same packet pair collides twice at different
// offsets (classically: both parties' MAC retransmissions collide
// again). `b_body` is kept as ground truth for tests and the bench;
// the resolution path never reads it.
struct CollisionEpisode {
  CollisionCapture first;
  CollisionCapture second;
  BitVec b_body;
};

struct CollisionEpisodeParams {
  std::size_t b_octets = 32;     // interferer body length
  double chip_error_p = 0.0;     // per-chip noise during both captures
  // Offsets are drawn uniformly from [1, max_offset] (clamped below
  // a_codewords), distinct between the two captures. 0 = auto: a
  // quarter of A's codewords.
  std::size_t max_offset = 0;
};

// Draws one episode of `a_body` against a fresh random interferer:
// interferer bytes, then the two distinct offsets, then both captures,
// all from `rng` in fixed order. Requires a_body to span at least 3
// codewords.
CollisionEpisode DrawCollisionEpisode(const phy::ChipCodebook& codebook,
                                      const BitVec& a_body,
                                      const CollisionEpisodeParams& params,
                                      Rng& rng);

}  // namespace ppr::collide
