#include "collide/zigzag.h"

#include <stdexcept>

#include "obs/obs.h"

namespace ppr::collide {

namespace {

// Merges a clean-region decode into the known map when it clears the
// trust threshold (best hint wins on repeats across captures).
void SeedClean(std::vector<KnownNibble>& known, std::size_t index,
               const phy::DecodedSymbol& d, const StripConfig& config) {
  if (d.hint > static_cast<double>(config.max_hint)) return;
  if (known[index].known && known[index].suspicion <= d.hint) return;
  known[index] = KnownNibble{true, false, d.symbol, d.hint};
}

}  // namespace

StripResult StripPair(const phy::ChipCodebook& codebook,
                      const CollisionCapture& first,
                      const CollisionCapture& second,
                      const StripConfig& config) {
  if (first.a_codewords != second.a_codewords ||
      first.b_codewords != second.b_codewords) {
    throw std::invalid_argument("StripPair: captures disagree on pair shape");
  }
  StripResult r;
  r.a.resize(first.a_codewords);
  r.b.resize(first.b_codewords);

  const CollisionCapture* captures[2] = {&first, &second};
  for (const CollisionCapture* c : captures) {
    for (std::size_t i = 0; i < c->a_codewords; ++i) {
      if (i >= c->overlap_begin && i < c->overlap_end) continue;
      SeedClean(r.a, i, c->a_symbols[i], config);
    }
    for (std::size_t t = 0; t < c->b_tail.size(); ++t) {
      SeedClean(r.b, c->TailBegin() + t, c->b_tail[t], config);
    }
  }

  // Alternating passes: each pass visits every overlap position of
  // both captures and strips wherever exactly one side is known. A
  // value accepted in this pass immediately unlocks positions later in
  // the same pass, so convergence usually takes few rounds; the loop
  // stops at a fixpoint (or max_rounds as a backstop).
  for (r.rounds = 0; r.rounds < config.max_rounds; ++r.rounds) {
    bool progress = false;
    for (const CollisionCapture* c : captures) {
      for (std::size_t i = c->overlap_begin; i < c->overlap_end; ++i) {
        const std::size_t j = c->BIndexAt(i);
        const bool a_known = r.a[i].known;
        const bool b_known = r.b[j].known;
        if (a_known == b_known) continue;  // both known or both unknown
        const KnownNibble& parent = a_known ? r.a[i] : r.b[j];
        const phy::ChipWord residual =
            c->overlap_chips[i - c->overlap_begin] ^
            codebook.Codeword(parent.value);
        int distance = 0;
        const int sym = codebook.DecodeHard(residual, &distance);
        if (distance > config.max_hint) continue;
        const double chain = parent.suspicion + static_cast<double>(distance);
        if (chain > config.max_chain_suspicion) continue;  // clean bail
        KnownNibble& child = a_known ? r.b[j] : r.a[i];
        child = KnownNibble{true, true, static_cast<std::uint8_t>(sym), chain};
        ++r.stripped;
        progress = true;
      }
    }
    if (!progress) break;
  }

  r.a_complete = true;
  for (const KnownNibble& k : r.a) r.a_complete = r.a_complete && k.known;
  r.b_complete = true;
  for (const KnownNibble& k : r.b) r.b_complete = r.b_complete && k.known;
  r.abandoned = !(r.a_complete && r.b_complete);
  obs::Count("collide.strip_rounds", r.rounds);
  return r;
}

}  // namespace ppr::collide
