// Orchestrates one collision episode end to end: strip what the
// confidences allow, then bank the rest algebraically.
//
// The listener sits between the medium (which hands it two captures
// of the same colliding pair) and the decoder (which consumes GF(256)
// equations). Its output is deliberately decoder-shaped: fully
// stripped FEC symbols become unit equations, unresolved-but-
// characterized symbol pairs become two-term cross-cancellation
// equations from the ledger. Everything carries a suspicion score so
// a poisoned stripping chain can be evicted as a group downstream.
#pragma once

#include <cstddef>
#include <vector>

#include "collide/capture.h"
#include "collide/equations.h"
#include "collide/zigzag.h"
#include "phy/chip_sequences.h"

namespace ppr::collide {

struct CollisionListenerConfig {
  StripConfig strip;
  // How many DSSS codewords one coded-repair source symbol spans
  // (symbol_bytes * 2 for the 4-bit codebook). The algebraic path is
  // skipped when symbols do not tile the body exactly.
  std::size_t codewords_per_fec_symbol = 16;
};

struct CollisionStats {
  std::size_t episodes_seen = 0;
  std::size_t codewords_stripped = 0;
  std::size_t equations_banked = 0;   // total equations handed out
  std::size_t cross_cancelled = 0;    // two-term subset of the above
  std::size_t episodes_abandoned = 0;
  std::size_t strip_rounds = 0;
  std::size_t pairs_resolved = 0;  // both packets fully stripped

  CollisionStats& operator+=(const CollisionStats& o);
};

struct ResolvedCollision {
  std::vector<CollisionEquation> equations;
  bool a_resolved = false;
  bool b_resolved = false;
  StripResult strip;
};

class CollisionListener {
 public:
  explicit CollisionListener(CollisionListenerConfig config)
      : config_(config) {}

  // Runs the stripper and the ledger over one episode and returns the
  // decoder equations for packet A. The caller is expected to have
  // ingested `InitialSymbolsFromCapture(episode.first)` already, so
  // unit equations are emitted only for symbols carrying information
  // the first capture's clean regions did not.
  ResolvedCollision Resolve(const phy::ChipCodebook& codebook,
                            const CollisionEpisode& episode);

  const CollisionStats& stats() const { return stats_; }

 private:
  CollisionListenerConfig config_;
  CollisionStats stats_;
};

}  // namespace ppr::collide
