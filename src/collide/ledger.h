// Banks unresolved-but-characterized superpositions and turns them
// into decoder equations.
//
// When the zigzag stripper bails on a low-confidence region, the
// collision is not wasted: two captures of the same pair at offsets
// d1 < d2 can be XORed chip-by-chip wherever they share a B codeword.
// B cancels, leaving chips(A_i) ^ chips(A_{i+delta}) ^ noise with
// delta = d2 - d1. The DSSS codebook is not GF(2)-linear, so the pair
// XOR is decoded by `DecodeXorNibble` (exhaustive codeword-pair
// search) with a genuine Hamming confidence. Nibble XOR is GF(256)
// addition, so a run of such constraints covering a whole FEC symbol
// becomes the two-term equation S_s ^ S_{s+delta/cps} = data — rank
// the coded-repair session can bank even though neither symbol is
// individually known.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "collide/capture.h"
#include "collide/equations.h"
#include "collide/zigzag.h"
#include "phy/chip_sequences.h"

namespace ppr::collide {

class CollisionLedger {
 public:
  // `a_codewords` must be a multiple of `codewords_per_fec_symbol`
  // (the coded-repair framing guarantees whole-octet symbols tile the
  // body exactly).
  CollisionLedger(std::size_t a_codewords,
                  std::size_t codewords_per_fec_symbol);

  // Copies the capture's superposed overlap into the bank. Only the
  // geometry and raw chip words are retained.
  void Bank(const CollisionCapture& capture);

  std::size_t banked() const { return captures_.size(); }

  // Emits two-term GF(256) equations from every banked pair with
  // distinct, symbol-aligned offsets. Pairs of symbols the stripper
  // already fully resolved are skipped (a unit equation per symbol is
  // strictly stronger). `config.max_hint` bounds each XOR decode.
  std::vector<CollisionEquation> CrossCancel(const phy::ChipCodebook& codebook,
                                             const StripResult& strip,
                                             const StripConfig& config) const;

 private:
  struct BankedCapture {
    std::size_t offset = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::vector<phy::ChipWord> chips;
  };

  std::size_t a_codewords_;
  std::size_t codewords_per_symbol_;
  std::vector<BankedCapture> captures_;
};

}  // namespace ppr::collide
