#include "collide/capture.h"

#include <bit>
#include <limits>
#include <stdexcept>

#include "arq/link_sim.h"
#include "phy/channel.h"

namespace ppr::collide {

namespace {

std::uint8_t NibbleAt(const BitVec& body, std::size_t codeword) {
  return static_cast<std::uint8_t>(body.ReadUint(codeword * 4, 4));
}

}  // namespace

CollisionCapture SimulateCollisionCapture(const phy::ChipCodebook& codebook,
                                          const BitVec& a_body,
                                          const BitVec& b_body,
                                          std::size_t offset,
                                          double chip_error_p, Rng& rng) {
  if (a_body.size() % 4 != 0 || b_body.size() % 4 != 0) {
    throw std::invalid_argument(
        "SimulateCollisionCapture: bodies must be codeword aligned");
  }
  CollisionCapture c;
  c.offset = offset;
  c.a_codewords = a_body.size() / 4;
  c.b_codewords = b_body.size() / 4;
  if (c.b_codewords == 0 || offset >= c.a_codewords) {
    throw std::invalid_argument(
        "SimulateCollisionCapture: overlap must be non-empty");
  }
  c.overlap_begin = offset;
  c.overlap_end = std::min(c.a_codewords, offset + c.b_codewords);

  c.a_symbols.reserve(c.a_codewords);
  c.overlap_chips.reserve(c.OverlapCodewords());
  for (std::size_t i = 0; i < c.a_codewords; ++i) {
    const std::uint8_t a_nib = NibbleAt(a_body, i);
    if (i >= c.overlap_begin && i < c.overlap_end) {
      const std::uint8_t b_nib = NibbleAt(b_body, c.BIndexAt(i));
      const phy::ChipWord word = codebook.Codeword(a_nib) ^
                                 codebook.Codeword(b_nib) ^
                                 phy::SampleChipErrorMask(rng, chip_error_p);
      c.overlap_chips.push_back(word);
      // What a collision-oblivious despreader would output for this
      // position: the nearest codeword to the superposition — usually
      // wrong, never trustworthy. The infinite hint marks it unusable;
      // the true superposed chips live in overlap_chips.
      phy::DecodedSymbol d;
      int distance = 0;
      d.symbol = static_cast<std::uint8_t>(codebook.DecodeHard(word, &distance));
      d.hamming_distance = distance;
      d.hint = std::numeric_limits<double>::infinity();
      c.a_symbols.push_back(d);
    } else {
      c.a_symbols.push_back(
          arq::ChipTransmitNibble(codebook, a_nib, chip_error_p, rng));
    }
  }
  for (std::size_t j = c.TailBegin(); j < c.b_codewords; ++j) {
    c.b_tail.push_back(arq::ChipTransmitNibble(codebook, NibbleAt(b_body, j),
                                               chip_error_p, rng));
  }
  return c;
}

std::vector<phy::DecodedSymbol> InitialSymbolsFromCapture(
    const CollisionCapture& capture) {
  std::vector<phy::DecodedSymbol> symbols = capture.a_symbols;
  for (std::size_t i = capture.overlap_begin; i < capture.overlap_end; ++i) {
    symbols[i].hint = std::numeric_limits<double>::infinity();
    symbols[i].hamming_distance = static_cast<int>(phy::kChipsPerSymbol);
  }
  return symbols;
}

std::uint8_t DecodeXorNibble(const phy::ChipCodebook& codebook,
                             phy::ChipWord word, int* distance) {
  int best = std::numeric_limits<int>::max();
  std::uint8_t best_xor = 0;
  for (int x = 0; x < 16; ++x) {
    const phy::ChipWord cx = codebook.Codeword(x);
    for (int y = x; y < 16; ++y) {
      const int d = std::popcount(word ^ cx ^ codebook.Codeword(y));
      if (d < best) {
        best = d;
        best_xor = static_cast<std::uint8_t>(x ^ y);
      }
    }
  }
  if (distance != nullptr) *distance = best;
  return best_xor;
}

CollisionEpisode DrawCollisionEpisode(const phy::ChipCodebook& codebook,
                                      const BitVec& a_body,
                                      const CollisionEpisodeParams& params,
                                      Rng& rng) {
  const std::size_t a_cw = a_body.size() / 4;
  if (a_cw < 3) {
    throw std::invalid_argument(
        "DrawCollisionEpisode: body must span at least 3 codewords");
  }
  CollisionEpisode e;
  const std::size_t b_octets = params.b_octets == 0 ? 1 : params.b_octets;
  for (std::size_t o = 0; o < b_octets; ++o) {
    e.b_body.AppendUint(rng.UniformInt(256), 8);
  }
  // Distinct offsets in [1, K]: draw the first uniformly, the second
  // from the K-1 remaining values.
  std::size_t max_offset = params.max_offset == 0
                               ? std::max<std::size_t>(2, a_cw / 4)
                               : params.max_offset;
  const std::size_t k = std::min(max_offset, a_cw - 1);
  const std::size_t d1 = 1 + rng.UniformInt(k);
  std::size_t d2 = 1 + rng.UniformInt(k > 1 ? k - 1 : 1);
  if (d2 >= d1) ++d2;
  e.first = SimulateCollisionCapture(codebook, a_body, e.b_body, d1,
                                     params.chip_error_p, rng);
  e.second = SimulateCollisionCapture(codebook, a_body, e.b_body, d2,
                                      params.chip_error_p, rng);
  return e;
}

}  // namespace ppr::collide
