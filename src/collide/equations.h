// The currency the collision subsystem hands the decoder: GF(256)
// equations over one flow's FEC source symbols. Kept dependency-free so
// arq::CollisionEquationConsumer (recovery_strategy.h) can name the
// type without pulling the whole subsystem into its header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppr::collide {

// coefs . source_symbols = data, byte-wise over GF(256) (XOR is
// addition in characteristic 2, so a cross-cancelled superposition
// S_i ^ S_j = d is the two-term equation {coefs[i]=coefs[j]=1}).
// `suspicion` orders eviction when a decode fails verification: the
// accumulated stripping-chain / XOR-decode Hamming confidence that
// produced the equation.
struct CollisionEquation {
  std::vector<std::uint8_t> coefs;
  std::vector<std::uint8_t> data;
  double suspicion = 0.0;
};

}  // namespace ppr::collide
