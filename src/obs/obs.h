// Observability context: which MetricRegistry and Tracer the
// instrumentation hooks in arq/, fec/, ppr/, and sim/ write to.
//
// The context is thread-local and scoped (ScopedObsContext), so a
// caller wires a whole call tree without threading pointers through
// every layer: sim::RunLinkRecoveryExperiment scopes one registry per
// link around the link's sessions, media, and decoders; the traced
// example scopes one registry + tracer around a whole recovery. With
// no context installed (the default), every hook is a thread-local
// load and a null check.
//
// `record_timings` exists because wall-clock latencies are not
// deterministic: the sim sweep disables them so its merged per-link
// snapshots stay byte-identical across thread counts, while
// interactive traces keep them on.
//
// Under PPR_OBS_OFF every helper here is an empty inline — the
// compile-out path that reduces each hook to nothing.
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppr::obs {

struct ObsContext {
  MetricRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  bool record_timings = true;
};

#if !defined(PPR_OBS_OFF)

// The calling thread's live context (defined in obs.cc).
ObsContext& MutableContext();

inline MetricRegistry* CurrentMetrics() { return MutableContext().metrics; }
inline Tracer* CurrentTracer() { return MutableContext().tracer; }
inline bool TimingsEnabled() {
  const ObsContext& ctx = MutableContext();
  return ctx.metrics != nullptr && ctx.record_timings;
}

#else

inline MetricRegistry* CurrentMetrics() { return nullptr; }
inline Tracer* CurrentTracer() { return nullptr; }
inline bool TimingsEnabled() { return false; }

#endif

// RAII install/restore of the calling thread's context.
class ScopedObsContext {
 public:
#if !defined(PPR_OBS_OFF)
  explicit ScopedObsContext(ObsContext ctx) : saved_(MutableContext()) {
    MutableContext() = ctx;
  }
  ~ScopedObsContext() { MutableContext() = saved_; }
#else
  explicit ScopedObsContext(ObsContext) {}
#endif
  ScopedObsContext(MetricRegistry* metrics, Tracer* tracer = nullptr,
                   bool record_timings = true)
      : ScopedObsContext(ObsContext{metrics, tracer, record_timings}) {}
  ScopedObsContext(const ScopedObsContext&) = delete;
  ScopedObsContext& operator=(const ScopedObsContext&) = delete;

 private:
#if !defined(PPR_OBS_OFF)
  ObsContext saved_;
#endif
};

// ------------------------------------------------- null-safe hook API
// The instrumentation call sites use these; each is a no-op when the
// relevant context half is absent (and an empty inline under
// PPR_OBS_OFF). Sites hot enough to care cache the Get* cell pointer
// instead.

inline void Count(std::string_view name, std::uint64_t n = 1) {
#if !defined(PPR_OBS_OFF)
  if (MetricRegistry* m = CurrentMetrics()) m->GetCounter(name)->Add(n);
#else
  (void)name;
  (void)n;
#endif
}

inline void CountLabeled(std::string_view name, const LabelSet& labels,
                         std::uint64_t n = 1) {
#if !defined(PPR_OBS_OFF)
  if (MetricRegistry* m = CurrentMetrics()) m->GetCounter(name, labels)->Add(n);
#else
  (void)name;
  (void)labels;
  (void)n;
#endif
}

inline void SetGauge(std::string_view name, double value) {
#if !defined(PPR_OBS_OFF)
  if (MetricRegistry* m = CurrentMetrics()) m->GetGauge(name)->Set(value);
#else
  (void)name;
  (void)value;
#endif
}

inline void Observe(std::string_view name, std::uint64_t value) {
#if !defined(PPR_OBS_OFF)
  if (MetricRegistry* m = CurrentMetrics()) {
    m->GetHistogram(name)->Record(value);
  }
#else
  (void)name;
  (void)value;
#endif
}

inline void ObserveLabeled(std::string_view name, const LabelSet& labels,
                           std::uint64_t value) {
#if !defined(PPR_OBS_OFF)
  if (MetricRegistry* m = CurrentMetrics()) {
    m->GetHistogram(name, labels)->Record(value);
  }
#else
  (void)name;
  (void)labels;
  (void)value;
#endif
}

// Latency histograms only land when the context records timings (see
// the header comment on determinism).
inline void ObserveDuration(std::string_view name, std::uint64_t ns) {
#if !defined(PPR_OBS_OFF)
  if (TimingsEnabled()) CurrentMetrics()->GetHistogram(name)->Record(ns);
#else
  (void)name;
  (void)ns;
#endif
}

inline void TraceInstant(std::string_view name, std::string_view category,
                         TraceArgs args = {}) {
#if !defined(PPR_OBS_OFF)
  if (Tracer* t = CurrentTracer()) {
    t->Instant(std::string(name), std::string(category), std::move(args));
  }
#else
  (void)name;
  (void)category;
  (void)args;
#endif
}

// Lazy-args form for hot paths: the callable producing the TraceArgs
// only runs when a tracer is installed, so a quiescent hook never
// allocates the args vector.
template <typename ArgsFn>
  requires std::is_invocable_r_v<TraceArgs, ArgsFn&>
inline void TraceInstant(std::string_view name, std::string_view category,
                         ArgsFn&& args_fn) {
#if !defined(PPR_OBS_OFF)
  if (Tracer* t = CurrentTracer()) {
    t->Instant(std::string(name), std::string(category), args_fn());
  }
#else
  (void)name;
  (void)category;
  (void)args_fn;
#endif
}

inline void TraceComplete(std::string_view name, std::string_view category,
                          std::uint64_t ts_ns, std::uint64_t dur_ns,
                          TraceArgs args = {}) {
#if !defined(PPR_OBS_OFF)
  if (Tracer* t = CurrentTracer()) {
    t->Complete(std::string(name), std::string(category), ts_ns, dur_ns,
                std::move(args));
  }
#else
  (void)name;
  (void)category;
  (void)ts_ns;
  (void)dur_ns;
  (void)args;
#endif
}

template <typename ArgsFn>
  requires std::is_invocable_r_v<TraceArgs, ArgsFn&>
inline void TraceComplete(std::string_view name, std::string_view category,
                          std::uint64_t ts_ns, std::uint64_t dur_ns,
                          ArgsFn&& args_fn) {
#if !defined(PPR_OBS_OFF)
  if (Tracer* t = CurrentTracer()) {
    t->Complete(std::string(name), std::string(category), ts_ns, dur_ns,
                args_fn());
  }
#else
  (void)name;
  (void)category;
  (void)ts_ns;
  (void)dur_ns;
  (void)args_fn;
#endif
}

}  // namespace ppr::obs
