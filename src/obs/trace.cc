#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace ppr::obs {

#if !defined(PPR_OBS_OFF)

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t ThreadTraceId() {
  static std::atomic<std::uint32_t> next{0};
  static thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::Emit(TraceEvent event) {
  if (capacity_ == 0) return;
  if (event.ts_ns == 0) event.ts_ns = NowNs();
  if (event.tid == 0) event.tid = ThreadTraceId() + 1;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(event));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

#else  // PPR_OBS_OFF

std::uint64_t NowNs() { return 0; }
std::uint32_t ThreadTraceId() { return 0; }
void Tracer::Emit(TraceEvent) {}
std::size_t Tracer::size() const { return 0; }
std::uint64_t Tracer::dropped() const { return 0; }
std::vector<TraceEvent> Tracer::Events() const { return {}; }

#endif  // PPR_OBS_OFF

void Tracer::Instant(std::string name, std::string category, TraceArgs args) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.args = std::move(args);
  Emit(std::move(event));
}

void Tracer::Complete(std::string name, std::string category,
                      std::uint64_t ts_ns, std::uint64_t dur_ns,
                      TraceArgs args) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.args = std::move(args);
  Emit(std::move(event));
}

namespace {

void WriteJsonString(std::FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fprintf(f, "\\%c", c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", static_cast<unsigned>(c));
    } else {
      std::fputc(c, f);
    }
  }
  std::fputc('"', f);
}

// Args object with sorted keys.
void WriteArgs(std::FILE* f, const TraceArgs& args) {
  TraceArgs sorted = args;
  std::sort(sorted.begin(), sorted.end());
  std::fputc('{', f);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) std::fputc(',', f);
    WriteJsonString(f, sorted[i].first);
    std::fprintf(f, ":%" PRId64, sorted[i].second);
  }
  std::fputc('}', f);
}

// One event object; keys in sorted order (args, cat, dur, name, ph,
// pid, tid, ts). `scale_to_us` switches timestamps to the microsecond
// doubles the Chrome format expects; JSONL keeps integer nanoseconds.
void WriteEvent(std::FILE* f, const TraceEvent& event, bool scale_to_us) {
  std::fprintf(f, "{\"args\":");
  WriteArgs(f, event.args);
  std::fprintf(f, ",\"cat\":");
  WriteJsonString(f, event.category);
  if (event.phase == 'X') {
    if (scale_to_us) {
      std::fprintf(f, ",\"dur\":%.3f",
                   static_cast<double>(event.dur_ns) / 1000.0);
    } else {
      std::fprintf(f, ",\"dur\":%" PRIu64, event.dur_ns);
    }
  }
  std::fprintf(f, ",\"name\":");
  WriteJsonString(f, event.name);
  std::fprintf(f, ",\"ph\":\"%c\",\"pid\":1,\"tid\":%u,", event.phase,
               event.tid);
  if (scale_to_us) {
    std::fprintf(f, "\"ts\":%.3f", static_cast<double>(event.ts_ns) / 1000.0);
  } else {
    std::fprintf(f, "\"ts\":%" PRIu64, event.ts_ns);
  }
  std::fputc('}', f);
}

}  // namespace

bool Tracer::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "Tracer::WriteJsonl: cannot open %s\n", path.c_str());
    return false;
  }
  for (const TraceEvent& event : Events()) {
    WriteEvent(f, event, /*scale_to_us=*/false);
    std::fputc('\n', f);
  }
  const bool ok = std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "Tracer::WriteJsonl: write failed: %s\n",
                 path.c_str());
  }
  return ok;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "Tracer::WriteChromeTrace: cannot open %s\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  for (const TraceEvent& event : Events()) {
    if (!first) std::fputc(',', f);
    first = false;
    std::fputc('\n', f);
    WriteEvent(f, event, /*scale_to_us=*/true);
  }
  std::fprintf(f, "\n]}\n");
  const bool ok = std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "Tracer::WriteChromeTrace: write failed: %s\n",
                 path.c_str());
  }
  return ok;
}

}  // namespace ppr::obs
