// Structured session tracing: a bounded ring of typed TraceEvents with
// JSONL and Chrome-trace (chrome://tracing / Perfetto) exporters.
//
// Instrumented layers emit events through the thread-local context
// (obs/obs.h): session round start/end, feedback decode, repair
// bursts, equation consume/evict, medium transmissions and collisions.
// The ring has fixed capacity — when it fills, the oldest events are
// overwritten and dropped() counts what was lost, so a tracer can stay
// attached to a long sweep without unbounded retention.
//
// Exports use sorted keys within every JSON object, making the files
// byte-stable for a given event sequence and machine-checkable in CI
// (bench/validate_trace.py).
//
// Under PPR_OBS_OFF, Emit() and the ScopedTimer are no-ops; the
// exporters still write valid (empty) documents.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace ppr::obs {

// Monotonic nanoseconds (steady clock); 0 under PPR_OBS_OFF.
std::uint64_t NowNs();

// Small dense id for the calling thread (0, 1, 2, ... in first-use
// order) — what the Chrome trace uses as its tid.
std::uint32_t ThreadTraceId();

using TraceArgs = std::vector<std::pair<std::string, std::int64_t>>;

struct TraceEvent {
  std::string name;       // e.g. "session.round"
  std::string category;   // e.g. "arq", "fec", "medium"
  char phase = 'i';       // 'X' complete (ts + dur), 'i' instant
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  // 'X' only
  std::uint32_t tid = 0;
  TraceArgs args;         // exported with sorted keys
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16) : capacity_(capacity) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Appends an event, evicting the oldest when the ring is full.
  // Thread-safe. ts/tid default to now / the calling thread when left
  // zero.
  void Emit(TraceEvent event);

  void Instant(std::string name, std::string category, TraceArgs args = {});
  void Complete(std::string name, std::string category, std::uint64_t ts_ns,
                std::uint64_t dur_ns, TraceArgs args = {});

  std::size_t size() const;
  std::uint64_t dropped() const;
  std::vector<TraceEvent> Events() const;  // oldest first

  // One event per line: {"args":{...},"cat":...,"dur":...,"name":...,
  // "ph":...,"tid":...,"ts":...} — keys sorted. Returns false (with a
  // note on stderr) when the file cannot be written.
  bool WriteJsonl(const std::string& path) const;

  // The Chrome trace-event format: {"displayTimeUnit":"ms",
  // "traceEvents":[...]} with microsecond timestamps, loadable in
  // chrome://tracing and Perfetto.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  std::size_t capacity_;
#if !defined(PPR_OBS_OFF)
  mutable std::mutex mu_;
  std::deque<TraceEvent> ring_;
  std::uint64_t dropped_ = 0;
#endif
};

// RAII timer: on destruction records the elapsed nanoseconds into
// `latency` (when non-null) and emits a Complete event to `tracer`
// (when non-null). The histogram pointer comes from a MetricRegistry,
// so the same scope feeds both the latency distribution and the trace
// timeline. With both sinks null the timer never reads the clock, and
// the lazy-args constructor never runs its callable — a quiescent
// instrumented scope costs two null stores.
class ScopedTimer {
 public:
  ScopedTimer(Histogram* latency, Tracer* tracer = nullptr,
              std::string name = {}, std::string category = {},
              TraceArgs args = {})
#if !defined(PPR_OBS_OFF)
      : latency_(latency),
        tracer_(tracer),
        name_(std::move(name)),
        category_(std::move(category)),
        args_(std::move(args)),
        start_ns_(latency || tracer ? NowNs() : 0) {
  }
#else
  {
    (void)latency;
    (void)tracer;
    (void)name;
    (void)category;
    (void)args;
  }
#endif

  // Hot-path form: the name/category strings and args vector are only
  // materialized when a tracer will consume them.
  template <typename ArgsFn>
    requires std::is_invocable_r_v<TraceArgs, ArgsFn&>
  ScopedTimer(Histogram* latency, Tracer* tracer, std::string_view name,
              std::string_view category, ArgsFn&& args_fn)
      : ScopedTimer(latency, tracer,
                    tracer ? std::string(name) : std::string(),
                    tracer ? std::string(category) : std::string(),
                    tracer ? args_fn() : TraceArgs{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
#if !defined(PPR_OBS_OFF)
    if (latency_ == nullptr && tracer_ == nullptr) return;
    const std::uint64_t dur = NowNs() - start_ns_;
    if (latency_) latency_->Record(dur);
    if (tracer_) {
      tracer_->Complete(std::move(name_), std::move(category_), start_ns_, dur,
                        std::move(args_));
    }
#endif
  }

 private:
#if !defined(PPR_OBS_OFF)
  Histogram* latency_;
  Tracer* tracer_;
  std::string name_;
  std::string category_;
  TraceArgs args_;
  std::uint64_t start_ns_;
#endif
};

}  // namespace ppr::obs
