#include "obs/obs.h"

namespace ppr::obs {

#if !defined(PPR_OBS_OFF)

ObsContext& MutableContext() {
  static thread_local ObsContext ctx;
  return ctx;
}

#endif

}  // namespace ppr::obs
