// Metrics core of the observability subsystem: labeled counters,
// gauges, and bounded log2-bucket histograms behind a MetricRegistry
// with per-thread shards.
//
// Design constraints, in order:
//
//   * Deterministic aggregation. A registry's TakeSnapshot() merges its
//     shards into one sorted map; because counter and histogram merges
//     are commutative sums, the merged snapshot is invariant to how
//     work was split across threads. sim::RunLinkRecoveryExperiment
//     leans on this: per-link registries merge into one experiment
//     snapshot that is byte-identical at any thread count.
//   * Bounded memory. A histogram is 64 log2 buckets plus count / sum /
//     min / max, regardless of how many samples it absorbs — a sweep
//     can stream millions of rounds through one without O(rounds)
//     retention.
//   * Cheap hot path. Get*() resolves a cell once (mutex + map lookup);
//     the returned pointer's Add()/Record() is a handful of relaxed
//     atomic ops on a cell only this thread writes (shards are keyed by
//     thread id). Cache the pointer where the call site is hot.
//   * Compile-out. Under PPR_OBS_OFF every mutator is an empty inline
//     and registries hold no storage; the API keeps its shape so call
//     sites build unchanged.
//
// Label sets are canonicalized into the metric key as
// "name{k1=v1,k2=v2}" with keys sorted, so exports are byte-stable
// regardless of construction order.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace ppr::obs {

using LabelSet = std::vector<std::pair<std::string, std::string>>;

// "name" or "name{k1=v1,k2=v2}" with label keys sorted.
std::string CanonicalMetricKey(std::string_view name, const LabelSet& labels);

// A monotonically increasing count. Cells live in a registry shard
// written by one thread; Add() is a relaxed store so a concurrent
// TakeSnapshot() reads a consistent (if slightly stale) value.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
#if !defined(PPR_OBS_OFF)
    v_.store(v_.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  std::uint64_t value() const {
#if !defined(PPR_OBS_OFF)
    return v_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

 private:
#if !defined(PPR_OBS_OFF)
  std::atomic<std::uint64_t> v_{0};
#endif
};

// A point-in-time value (e.g. a configuration knob or high-water mark).
// Merging snapshots takes the max, the only commutative choice that is
// also useful for high-water readings.
class Gauge {
 public:
  void Set(double v) {
#if !defined(PPR_OBS_OFF)
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  double value() const {
#if !defined(PPR_OBS_OFF)
    return v_.load(std::memory_order_relaxed);
#else
    return 0.0;
#endif
  }

 private:
#if !defined(PPR_OBS_OFF)
  std::atomic<double> v_{0.0};
#endif
};

// Bounded log2-bucket histogram over non-negative integer samples
// (bit counts, nanoseconds, ranks). Bucket 0 holds v == 0; bucket i
// (i >= 1) holds 2^(i-1) <= v < 2^i; the last bucket absorbs the tail.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  static std::size_t BucketIndex(std::uint64_t v) {
    if (v == 0) return 0;
    const std::size_t idx = 64 - static_cast<std::size_t>(__builtin_clzll(v));
    return idx < kBuckets ? idx : kBuckets - 1;
  }
  // Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  static std::uint64_t BucketLowerBound(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void Record(std::uint64_t v) {
#if !defined(PPR_OBS_OFF)
    const auto relaxed = std::memory_order_relaxed;
    auto& bucket = buckets_[BucketIndex(v)];
    bucket.store(bucket.load(relaxed) + 1, relaxed);
    count_.store(count_.load(relaxed) + 1, relaxed);
    sum_.store(sum_.load(relaxed) + v, relaxed);
    if (count_.load(relaxed) == 1 || v < min_.load(relaxed)) {
      min_.store(v, relaxed);
    }
    if (v > max_.load(relaxed)) max_.store(v, relaxed);
#else
    (void)v;
#endif
  }

  std::uint64_t count() const {
#if !defined(PPR_OBS_OFF)
    return count_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

#if !defined(PPR_OBS_OFF)
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
#else
  std::uint64_t bucket(std::size_t) const { return 0; }
  std::uint64_t sum() const { return 0; }
  std::uint64_t min() const { return 0; }
  std::uint64_t max() const { return 0; }
#endif

 private:
#if !defined(PPR_OBS_OFF)
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{0};
  std::atomic<std::uint64_t> max_{0};
#endif
};

struct HistogramSnapshot {
  // Trailing zero buckets trimmed; buckets[i] follows
  // Histogram::BucketIndex.
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  // Direct single-threaded record (no atomics): for result structs that
  // accumulate a histogram outside any registry — e.g. the stream sim's
  // latency distributions, which must exist even under PPR_OBS_OFF.
  void Record(std::uint64_t v);
  void Merge(const HistogramSnapshot& other);
  // Nearest-bucket-lower-bound quantile; q in [0, 1].
  std::uint64_t Quantile(double q) const;
  // Interpolated quantile: like Quantile(), but spreads the winning
  // bucket's mass uniformly over its value range instead of snapping to
  // the lower bound, and clamps the estimate to the observed [min, max].
  // Halves the worst-case log2-bucket error; the percentile estimator
  // latency reports should use.
  double ValueAtQuantile(double q) const;
  bool operator==(const HistogramSnapshot&) const = default;
};

// A registry's merged, sorted state: the unit of aggregation for sim
// sweeps (per-link snapshots merge into the experiment result) and the
// export surface (sorted keys make the JSON byte-stable).
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Counters and histograms sum; gauges take the max.
  void Merge(const Snapshot& other);
  // One-line JSON with sorted keys at every level.
  std::string ToJson() const;
  bool Empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  bool operator==(const Snapshot&) const = default;
};

// Registry of labeled metrics, sharded per accessing thread: Get*()
// returns this thread's cell for the key, so writers never contend and
// TakeSnapshot() merges shards without stopping them. Cell pointers
// stay valid for the registry's lifetime (and remain single-thread
// write-owned; don't share one across threads).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(std::string_view name, const LabelSet& labels = {});
  Gauge* GetGauge(std::string_view name, const LabelSet& labels = {});
  Histogram* GetHistogram(std::string_view name, const LabelSet& labels = {});

  // Merged across shards, sorted by key; empty under PPR_OBS_OFF.
  Snapshot TakeSnapshot() const;

 private:
#if !defined(PPR_OBS_OFF)
  struct Shard {
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Shard& ShardForThisThread();

  mutable std::mutex mu_;
  std::map<std::thread::id, std::unique_ptr<Shard>> shards_;
#endif
};

}  // namespace ppr::obs
