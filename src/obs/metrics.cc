#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace ppr::obs {

std::string CanonicalMetricKey(std::string_view name, const LabelSet& labels) {
  if (labels.empty()) return std::string(name);
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

void HistogramSnapshot::Record(std::uint64_t v) {
  const std::size_t i = Histogram::BucketIndex(v);
  if (buckets.size() <= i) buckets.resize(i + 1, 0);
  ++buckets[i];
  min = count == 0 ? v : std::min(min, v);
  max = count == 0 ? v : std::max(max, v);
  ++count;
  sum += v;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

std::uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank over the bucketized mass; the answer is the bucket's
  // inclusive lower bound (exact for the common power-of-two counts,
  // within 2x otherwise — the resolution log2 buckets buy).
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * count + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::BucketLowerBound(i);
  }
  return max;
}

double HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t below = seen;
    seen += buckets[i];
    if (static_cast<double>(seen) < rank) continue;
    // The target rank lands in bucket i, which covers
    // [BucketLowerBound(i), BucketLowerBound(i + 1)). Interpolate the
    // rank's position within the bucket's mass across that range.
    const double lo = static_cast<double>(Histogram::BucketLowerBound(i));
    const double hi =
        i == 0 ? 1.0 : static_cast<double>(Histogram::BucketLowerBound(i + 1));
    const double frac = (rank - static_cast<double>(below)) /
                        static_cast<double>(buckets[i]);
    const double estimate = lo + frac * (hi - lo);
    return std::clamp(estimate, static_cast<double>(min),
                      static_cast<double>(max));
  }
  return static_cast<double>(max);
}

void Snapshot::Merge(const Snapshot& other) {
  for (const auto& [key, value] : other.counters) counters[key] += value;
  for (const auto& [key, value] : other.gauges) {
    auto [it, inserted] = gauges.try_emplace(key, value);
    if (!inserted) it->second = std::max(it->second, value);
  }
  for (const auto& [key, value] : other.histograms) {
    histograms[key].Merge(value);
  }
}

namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void AppendUint(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string Snapshot::ToJson() const {
  // std::map iteration is already sorted; every level of the document
  // therefore has sorted keys, which is what makes the export
  // byte-stable and diffable.
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [key, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, key);
    out += ':';
    AppendUint(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, value] : gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, key);
    out += ':';
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, key);
    out += ":{\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ',';
      AppendUint(out, h.buckets[i]);
    }
    out += "],\"count\":";
    AppendUint(out, h.count);
    out += ",\"max\":";
    AppendUint(out, h.max);
    out += ",\"min\":";
    AppendUint(out, h.min);
    out += ",\"sum\":";
    AppendUint(out, h.sum);
    out += '}';
  }
  out += "},\"schema\":1}";
  return out;
}

#if !defined(PPR_OBS_OFF)

MetricRegistry::Shard& MetricRegistry::ShardForThisThread() {
  std::lock_guard<std::mutex> lock(mu_);
  auto& shard = shards_[std::this_thread::get_id()];
  if (!shard) shard = std::make_unique<Shard>();
  return *shard;
}

Counter* MetricRegistry::GetCounter(std::string_view name,
                                    const LabelSet& labels) {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = shard.counters[CanonicalMetricKey(name, labels)];
  if (!cell) cell = std::make_unique<Counter>();
  return cell.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name, const LabelSet& labels) {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = shard.gauges[CanonicalMetricKey(name, labels)];
  if (!cell) cell = std::make_unique<Gauge>();
  return cell.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        const LabelSet& labels) {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = shard.histograms[CanonicalMetricKey(name, labels)];
  if (!cell) cell = std::make_unique<Histogram>();
  return cell.get();
}

Snapshot MetricRegistry::TakeSnapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [tid, shard] : shards_) {
    for (const auto& [key, cell] : shard->counters) {
      snap.counters[key] += cell->value();
    }
    for (const auto& [key, cell] : shard->gauges) {
      auto [it, inserted] = snap.gauges.try_emplace(key, cell->value());
      if (!inserted) it->second = std::max(it->second, cell->value());
    }
    for (const auto& [key, cell] : shard->histograms) {
      HistogramSnapshot h;
      if (cell->count() > 0) {
        std::size_t last = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (cell->bucket(i) > 0) last = i + 1;
        }
        h.buckets.resize(last);
        for (std::size_t i = 0; i < last; ++i) h.buckets[i] = cell->bucket(i);
        h.count = cell->count();
        h.sum = cell->sum();
        h.min = cell->min();
        h.max = cell->max();
      }
      // operator[] registers the key even when this shard's cell is
      // still empty, so exports list every histogram ever resolved.
      snap.histograms[key].Merge(h);
    }
  }
  return snap;
}

#else  // PPR_OBS_OFF: no storage; Get* hands out shared dummy cells.

Counter* MetricRegistry::GetCounter(std::string_view, const LabelSet&) {
  static Counter dummy;
  return &dummy;
}

Gauge* MetricRegistry::GetGauge(std::string_view, const LabelSet&) {
  static Gauge dummy;
  return &dummy;
}

Histogram* MetricRegistry::GetHistogram(std::string_view, const LabelSet&) {
  static Histogram dummy;
  return &dummy;
}

Snapshot MetricRegistry::TakeSnapshot() const { return {}; }

#endif  // PPR_OBS_OFF

}  // namespace ppr::obs
