// FlowEngine: a flow-table recovery engine for base-station scale.
//
// One engine hosts many concurrent recovery flows — the
// millions-of-users regime of the ROADMAP's million-session item —
// instead of one heap object and one blocking loop per exchange:
//
//   * Flow table. Native flow state is POD-ish and lives in a
//     FlowArena slot (engine/arena.h): header, ground-truth source
//     block, and a small per-flow elimination workspace, all in one
//     contiguous run keyed by a 64-bit FlowId through a
//     generation-checked handle. Spawning and retiring flows never
//     touches the heap in steady state.
//
//   * Event-driven scheduling. A binary-heap EventQueue
//     (engine/scheduler.h) of (virtual_time, flow) events replaces
//     the per-session while loop; RunUntil harvests every flow due
//     this tick together.
//
//   * Cross-flow GF(256) batching. The batch planner collects the
//     pending repair work of ALL runnable flows per tick. Flows in a
//     tick share one coefficient seed per repair slot (sound: each
//     flow's equation spans only its own source block, and within a
//     flow the slots use distinct seeds), so their source blocks can
//     be gathered symbol-major into staging rows and each slot's
//     encode issued as ONE fused GfAxpyN whose term spans concatenate
//     every participating flow — 1 KiB+ spans even when each flow's
//     deficit is 2-3 symbols, which is where the SIMD kernels earn
//     their keep (see bench/flow_engine_bench.cc).
//
// Native flows model the erasure regime: a destination missing
// `deficit` symbols of an n_source-symbol block, repairs crossing a
// per-record loss channel, decode by small dxd elimination over the
// missing columns (a delivered repair's known columns are substituted
// out against the destination's correct copies — which, in the
// erasure model, equal the source's ground truth — so the banked
// equation projects onto the missing columns only). The per-flow
// solver speaks fec::EquationSink, the same ingest surface as
// fec::RlncDecoder and stream::WindowDecoder.
//
// Compat flows wrap a legacy arq::RecoverySession and drive it one
// RunRound per scheduler event. Flows are independent, so
// interleaving rounds across sessions preserves each session's
// transcript bit-for-bit — the golden transcript CRCs pin this
// (tests/engine/flow_engine_test.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "arq/recovery_session.h"
#include "engine/arena.h"
#include "engine/scheduler.h"
#include "fec/codec.h"
#include "fec/equation_sink.h"
#include "fec/reed_solomon.h"

namespace ppr::engine {

using FlowId = std::uint64_t;

struct EngineConfig {
  // Uniform flow shape: every native flow recovers an n_source-symbol
  // block of symbol_bytes-byte symbols.
  std::size_t n_source = 16;
  std::size_t symbol_bytes = 64;
  // Deficits are drawn uniformly in [1, max_deficit] per flow; this
  // also sizes the per-flow elimination workspace. Capped at 64.
  std::size_t max_deficit = 3;
  // Per-repair-record delivery loss (the erasure channel).
  double record_loss = 0.2;
  // Virtual time between a flow's feedback rounds.
  std::uint64_t round_interval = 1;
  // Rounds before a native flow is abandoned as failed.
  std::size_t max_rounds = 64;
  std::size_t slots_per_slab = 1024;
  // Mixes per-flow RNG streams; same seed => same engine trajectory.
  std::uint64_t seed = 1;
  // Native-flow repair codec. kRlnc (default): seeded random
  // combinations, batched cross-flow GF(256) encode, dxd elimination.
  // kReedSolomon: max_deficit parity symbols precomputed at spawn
  // (GF(2^16) additive-FFT encode, fec/reed_solomon.h) and stored in
  // the slot — rounds move precomputed bytes only, and decode is the
  // O(K log K) erasure path. Requires even symbol_bytes.
  fec::CodecKind codec = fec::CodecKind::kRlnc;
};

struct EngineStats {
  std::uint64_t flows_spawned = 0;
  std::uint64_t flows_completed = 0;  // decoded and verified against truth
  std::uint64_t flows_failed = 0;     // abandoned at max_rounds
  std::uint64_t compat_completed = 0;
  std::uint64_t rounds = 0;           // native flow-rounds executed
  std::uint64_t repairs_sent = 0;
  std::uint64_t repairs_delivered = 0;
  // Fused encode accounting: one call per (tick, repair slot), spanning
  // every flow in the slot's group.
  std::uint64_t batch_calls = 0;
  std::uint64_t batch_bytes = 0;
};

class FlowEngine {
 public:
  explicit FlowEngine(EngineConfig config);
  ~FlowEngine();

  const EngineConfig& config() const { return config_; }
  std::uint64_t now() const { return now_; }
  std::size_t active_flows() const { return arena_.active(); }
  const EngineStats& stats() const { return stats_; }

  // Creates a native flow (deterministic content and deficit from
  // `id` + config.seed) and schedules its first round one interval
  // out. Returns the arena handle; it goes stale when the flow
  // completes or fails.
  FlowHandle SpawnFlow(FlowId id);
  bool FlowAlive(FlowHandle handle) const { return arena_.Alive(handle); }

  // Adopts a configured legacy session (TransmitInitial already done)
  // and schedules one RunRound per tick, up to `max_rounds` — the
  // scheduler-interleaved equivalent of session.Run(max_rounds).
  // Returns an index for CompatResult.
  std::size_t AddCompatSession(std::unique_ptr<arq::RecoverySession> session,
                               std::size_t max_rounds);
  bool CompatDone(std::size_t index) const;
  // Final stats of a finished compat session (requires CompatDone).
  const arq::SessionRunStats& CompatResult(std::size_t index) const;

  // Processes every event due at or before `until`, one batched tick
  // per distinct due time, and advances now(). Returns events
  // processed.
  std::size_t RunUntil(std::uint64_t until);

  // Drains the queue completely (every flow runs to completion or its
  // round cap). Returns events processed.
  std::size_t RunAll();

 private:
  struct CompatFlow {
    std::unique_ptr<arq::RecoverySession> session;
    std::size_t rounds_done = 0;
    std::size_t max_rounds = 0;
    bool done = false;
    arq::SessionRunStats result;
  };

  class NativeSolver;  // arena-backed dxd EquationSink, defined in .cc

  std::size_t ProcessTick(std::uint64_t tick_time);
  void ProcessNativeBatch();  // consumes batch_items_ (kRlnc)
  void ProcessRsBatch();      // consumes batch_items_ (kReedSolomon)
  void RunCompatRound(std::size_t index);
  void FinishFlow(FlowHandle handle, bool decoded);

  struct BatchItem {
    FlowHandle handle;
    std::uint32_t request = 0;  // repairs this flow still needs
  };

  EngineConfig config_;
  FlowArena arena_;
  EventQueue queue_;
  EngineStats stats_;
  std::uint64_t now_ = 0;
  std::uint32_t seed_counter_ = 0;  // shared repair-slot seeds
  std::vector<CompatFlow> compat_;
  // Slot layout offsets (bytes from slot start), fixed per engine.
  std::size_t off_source_ = 0;
  std::size_t off_coefs_ = 0;
  std::size_t off_data_ = 0;

  // Tick-lifetime scratch, reused across ticks.
  std::vector<FlowEvent> due_events_;
  std::vector<BatchItem> batch_items_;
  std::vector<std::vector<std::uint8_t>> staging_;  // symbol-major gather
  std::vector<std::uint8_t> repair_dst_;            // fused encode output
  std::vector<std::uint8_t> coef_scratch_;          // shared slot coefs
  std::vector<std::uint8_t> proj_coefs_;            // missing-column coefs
  std::vector<std::uint8_t> proj_data_;             // projected equation
  std::vector<std::uint8_t> solver_coefs_;          // solver work row
  std::vector<std::uint8_t> solver_data_;
  // kReedSolomon: one engine-lifetime encoder/decoder pair (the flow
  // shape is uniform), Reset() between flows — spawn and finish stay
  // heap-free in steady state.
  std::unique_ptr<fec::ReedSolomonEncoder> rs_encoder_;
  std::unique_ptr<fec::ReedSolomonDecoder> rs_decoder_;
};

}  // namespace ppr::engine
