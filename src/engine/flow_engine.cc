#include "engine/flow_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>

#include "common/rng.h"
#include "fec/gf256.h"
#include "fec/rlnc.h"
#include "obs/obs.h"

namespace ppr::engine {
namespace {

// Widest per-flow deficit the slot layout reserves solver rows for.
constexpr std::size_t kDeficitCap = 64;

// Scheduler keys: bit 63 selects compat sessions; native keys pack the
// arena handle (generation in the high half so a stale handle can be
// detected on pop without a table lookup).
constexpr std::uint64_t kCompatBit = std::uint64_t{1} << 63;

std::uint64_t PackHandle(FlowHandle handle) {
  return (static_cast<std::uint64_t>(handle.generation) << 32) | handle.index;
}

FlowHandle UnpackHandle(std::uint64_t key) {
  return FlowHandle{static_cast<std::uint32_t>(key & 0xFFFFFFFFu),
                    static_cast<std::uint32_t>(key >> 32)};
}

constexpr std::size_t AlignUp(std::size_t x, std::size_t a) {
  return (x + a - 1) / a * a;
}

// The POD-ish per-flow state at the start of every arena slot. The
// source block and the solver rows follow at engine-computed offsets.
struct NativeHeader {
  FlowId id;
  Rng rng;  // per-flow stream: content, deficit, channel draws
  std::uint16_t missing_count;
  std::uint16_t rank;
  std::uint16_t rounds_done;
  std::uint8_t missing[kDeficitCap];     // ascending missing column ids
  std::uint8_t pivot_live[kDeficitCap];  // solver row i holds pivot i
};

const EngineConfig& Validated(const EngineConfig& config) {
  if (config.n_source == 0 || config.symbol_bytes == 0) {
    throw std::invalid_argument("FlowEngine: empty flow shape");
  }
  if (config.max_deficit == 0 || config.max_deficit > kDeficitCap ||
      config.max_deficit > config.n_source) {
    throw std::invalid_argument("FlowEngine: bad max_deficit");
  }
  if (config.round_interval == 0) {
    throw std::invalid_argument("FlowEngine: zero round_interval");
  }
  if (config.codec == fec::CodecKind::kReedSolomon) {
    if (config.symbol_bytes % 2 != 0) {
      throw std::invalid_argument(
          "FlowEngine: kReedSolomon needs even symbol_bytes");
    }
    fec::RsBlockSize(config.n_source, config.max_deficit);  // shape limits
  }
  return config;
}

std::size_t SlotBytes(const EngineConfig& config) {
  const std::size_t source = config.n_source * config.symbol_bytes;
  const std::size_t solver =
      config.max_deficit * (config.max_deficit + config.symbol_bytes);
  return AlignUp(AlignUp(sizeof(NativeHeader), 64) + source + solver, 64);
}

}  // namespace

// Arena-backed dxd Gauss-Jordan solver over a flow's missing columns,
// speaking the same fec::EquationSink surface as the full decoders.
// Column i is the flow's i-th missing symbol; rows live in the flow's
// slot, the work row in engine-lifetime scratch, so ingest allocates
// nothing.
class FlowEngine::NativeSolver : public fec::EquationSink {
 public:
  NativeSolver(NativeHeader& header, std::byte* slot, FlowEngine& engine)
      : header_(header),
        coefs_(reinterpret_cast<std::uint8_t*>(slot + engine.off_coefs_)),
        data_(reinterpret_cast<std::uint8_t*>(slot + engine.off_data_)),
        d_max_(engine.config_.max_deficit),
        symbol_bytes_(engine.config_.symbol_bytes),
        work_coefs_(engine.solver_coefs_),
        work_data_(engine.solver_data_) {}

  std::size_t equation_width() const override { return header_.missing_count; }
  std::size_t equation_bytes() const override { return symbol_bytes_; }

  bool ConsumeEquationSpan(std::span<const std::uint8_t> coefs,
                           std::span<const std::uint8_t> data) override {
    const std::size_t d = header_.missing_count;
    if (coefs.size() != d || data.size() != symbol_bytes_) {
      throw std::invalid_argument("NativeSolver: equation shape mismatch");
    }
    work_coefs_.assign(coefs.begin(), coefs.end());
    work_data_.assign(data.begin(), data.end());

    // Forward-eliminate against the live pivot rows. Rows are
    // Gauss-Jordan reduced, so factors read upfront stay valid.
    for (std::size_t j = 0; j < d; ++j) {
      const std::uint8_t factor = work_coefs_[j];
      if (factor == 0 || !header_.pivot_live[j]) continue;
      fec::GfAxpy(std::span(work_coefs_.data(), d), factor, CoefRow(j));
      fec::GfAxpy(work_data_, factor, DataRow(j));
    }
    std::size_t lead = d;
    for (std::size_t j = 0; j < d; ++j) {
      if (work_coefs_[j] != 0) {
        lead = j;
        break;
      }
    }
    if (lead == d) return false;  // linearly dependent

    const std::uint8_t inv = fec::GfInv(work_coefs_[lead]);
    fec::GfScale(work_coefs_, inv);
    fec::GfScale(work_data_, inv);
    for (std::size_t j = 0; j < d; ++j) {
      if (!header_.pivot_live[j]) continue;
      const std::uint8_t factor = CoefRow(j)[lead];
      if (factor == 0) continue;
      fec::GfAxpy(MutableCoefRow(j), factor,
                  std::span<const std::uint8_t>(work_coefs_.data(), d));
      fec::GfAxpy(MutableDataRow(j), factor, work_data_);
    }
    std::memcpy(coefs_ + lead * d_max_, work_coefs_.data(), d);
    std::memcpy(data_ + lead * symbol_bytes_, work_data_.data(),
                symbol_bytes_);
    header_.pivot_live[lead] = 1;
    ++header_.rank;
    return true;
  }

  // Recovered missing symbol i; requires full rank (every row is then
  // the unit vector e_i, so its data IS the missing symbol).
  std::span<const std::uint8_t> Recovered(std::size_t i) const {
    assert(header_.rank == header_.missing_count && header_.pivot_live[i]);
    return DataRow(i);
  }

 private:
  std::span<const std::uint8_t> CoefRow(std::size_t j) const {
    return {coefs_ + j * d_max_, header_.missing_count};
  }
  std::span<std::uint8_t> MutableCoefRow(std::size_t j) {
    return {coefs_ + j * d_max_, header_.missing_count};
  }
  std::span<const std::uint8_t> DataRow(std::size_t j) const {
    return {data_ + j * symbol_bytes_, symbol_bytes_};
  }
  std::span<std::uint8_t> MutableDataRow(std::size_t j) {
    return {data_ + j * symbol_bytes_, symbol_bytes_};
  }

  NativeHeader& header_;
  std::uint8_t* coefs_;
  std::uint8_t* data_;
  std::size_t d_max_;
  std::size_t symbol_bytes_;
  std::vector<std::uint8_t>& work_coefs_;
  std::vector<std::uint8_t>& work_data_;
};

FlowEngine::FlowEngine(EngineConfig config)
    : config_(Validated(config)),
      arena_(SlotBytes(config_), config_.slots_per_slab) {
  off_source_ = AlignUp(sizeof(NativeHeader), 64);
  off_coefs_ = off_source_ + config_.n_source * config_.symbol_bytes;
  off_data_ = off_coefs_ + config_.max_deficit * config_.max_deficit;
  staging_.resize(config_.n_source);
  if (config_.codec == fec::CodecKind::kReedSolomon) {
    // Uniform flow shape: one encoder/decoder pair serves every flow
    // via Reset(). Parity rows reuse the solver region of the slot
    // (off_coefs_): m * symbol_bytes + nothing <= the solver area, the
    // delivered bitmap lives in header.pivot_live, the banked count in
    // header.rank.
    rs_encoder_ = std::make_unique<fec::ReedSolomonEncoder>(
        config_.n_source, config_.max_deficit, config_.symbol_bytes);
    rs_decoder_ = std::make_unique<fec::ReedSolomonDecoder>(
        config_.n_source, config_.max_deficit, config_.symbol_bytes);
  }
}

FlowEngine::~FlowEngine() = default;

FlowHandle FlowEngine::SpawnFlow(FlowId id) {
  const FlowHandle handle = arena_.Allocate();
  std::byte* slot = arena_.Get(handle);
  auto* header = new (slot) NativeHeader{
      id,
      Rng(config_.seed ^ (id * 0x9E3779B97F4A7C15ull) ^ 0xD1B54A32D192ED03ull),
      0,
      0,
      0,
      {},
      {}};

  // Ground-truth source block, straight from the flow's stream.
  auto* source = reinterpret_cast<std::uint8_t*>(slot + off_source_);
  const std::size_t block_bytes = config_.n_source * config_.symbol_bytes;
  std::size_t filled = 0;
  while (filled < block_bytes) {
    const std::uint64_t word = header->rng.Next();
    const std::size_t n = std::min(sizeof(word), block_bytes - filled);
    std::memcpy(source + filled, &word, n);
    filled += n;
  }

  // The deficit: which columns the destination is missing.
  const std::size_t deficit =
      1 + static_cast<std::size_t>(header->rng.UniformInt(config_.max_deficit));
  header->missing_count = static_cast<std::uint16_t>(deficit);
  for (std::size_t i = 0; i < deficit; ++i) {
    while (true) {
      const auto candidate = static_cast<std::uint8_t>(
          header->rng.UniformInt(config_.n_source));
      bool taken = false;
      for (std::size_t k = 0; k < i; ++k) {
        if (header->missing[k] == candidate) taken = true;
      }
      if (!taken) {
        header->missing[i] = candidate;
        break;
      }
    }
  }
  std::sort(header->missing, header->missing + deficit);

  if (config_.codec == fec::CodecKind::kReedSolomon) {
    // Precompute every parity symbol now: rounds then move bytes only.
    rs_encoder_->Reset();
    for (std::size_t i = 0; i < config_.n_source; ++i) {
      rs_encoder_->SetSource(
          i, std::span(source + i * config_.symbol_bytes,
                       config_.symbol_bytes));
    }
    rs_encoder_->Finish();
    auto* parity = reinterpret_cast<std::uint8_t*>(slot + off_coefs_);
    for (std::size_t j = 0; j < config_.max_deficit; ++j) {
      const auto p = rs_encoder_->Parity(j);
      std::memcpy(parity + j * config_.symbol_bytes, p.data(), p.size());
    }
  }

  ++stats_.flows_spawned;
  queue_.Push(now_ + config_.round_interval, PackHandle(handle));
  return handle;
}

std::size_t FlowEngine::AddCompatSession(
    std::unique_ptr<arq::RecoverySession> session, std::size_t max_rounds) {
  if (!session) {
    throw std::invalid_argument("FlowEngine: null compat session");
  }
  CompatFlow flow;
  flow.session = std::move(session);
  flow.max_rounds = max_rounds;
  compat_.push_back(std::move(flow));
  const std::size_t index = compat_.size() - 1;
  queue_.Push(now_ + config_.round_interval, kCompatBit | index);
  return index;
}

bool FlowEngine::CompatDone(std::size_t index) const {
  return compat_.at(index).done;
}

const arq::SessionRunStats& FlowEngine::CompatResult(std::size_t index) const {
  const CompatFlow& flow = compat_.at(index);
  if (!flow.done) {
    throw std::logic_error("FlowEngine: compat session still running");
  }
  return flow.result;
}

void FlowEngine::RunCompatRound(std::size_t index) {
  CompatFlow& flow = compat_.at(index);
  if (flow.done) return;
  if (!flow.session->RunRound()) {
    flow.result = flow.session->stats();
    flow.done = true;
    ++stats_.compat_completed;
    return;
  }
  ++flow.rounds_done;
  if (flow.rounds_done >= flow.max_rounds) {
    flow.result = flow.session->Conclude();
    flow.done = true;
    ++stats_.compat_completed;
    return;
  }
  queue_.Push(now_ + config_.round_interval, kCompatBit | index);
}

std::size_t FlowEngine::ProcessTick(std::uint64_t tick_time) {
  now_ = std::max(now_, tick_time);
  due_events_.clear();
  queue_.PopDue(tick_time, due_events_);
  batch_items_.clear();
  for (const FlowEvent& event : due_events_) {
    obs::Observe("engine.sched.lag", now_ - event.time);
    if (event.key & kCompatBit) {
      RunCompatRound(static_cast<std::size_t>(event.key & ~kCompatBit));
      continue;
    }
    const FlowHandle handle = UnpackHandle(event.key);
    if (!arena_.Alive(handle)) continue;  // retired while queued
    auto* header = reinterpret_cast<NativeHeader*>(arena_.Get(handle));
    batch_items_.push_back(
        {handle, static_cast<std::uint32_t>(header->missing_count -
                                            header->rank)});
  }
  if (!batch_items_.empty()) {
    if (config_.codec == fec::CodecKind::kReedSolomon) {
      ProcessRsBatch();
    } else {
      ProcessNativeBatch();
    }
  }
  obs::SetGauge("engine.flows.active",
                static_cast<double>(arena_.active()));
  return due_events_.size();
}

// One engine tick: every due native flow's repair round, with the
// GF(256) encode fused across flows.
//
// Flows are ordered by remaining request, descending, so "the flows
// still needing a repair at slot s" is always a PREFIX of the order.
// The source blocks are gathered once, symbol-major, into staging
// rows (staging_[j] = flow0's symbol j ++ flow1's symbol j ++ ...);
// repair slot s then shares ONE coefficient seed across its whole
// group — sound because each flow's equation spans only its own block,
// and a flow's distinct slots use distinct seeds — which turns the
// slot's encode into a single GfAxpyN whose term j spans
// group_size * symbol_bytes contiguous bytes. That is the long-run
// shape the SIMD kernels want, reached even at 2-3 symbol deficits.
void FlowEngine::ProcessNativeBatch() {
  const std::size_t n = config_.n_source;
  const std::size_t sb = config_.symbol_bytes;
  std::stable_sort(batch_items_.begin(), batch_items_.end(),
                   [](const BatchItem& a, const BatchItem& b) {
                     return a.request > b.request;
                   });
  const std::size_t flows = batch_items_.size();
  const std::size_t max_request = batch_items_.front().request;

  // Gather: amortized over every repair slot of the tick.
  for (std::size_t j = 0; j < n; ++j) staging_[j].resize(flows * sb);
  for (std::size_t p = 0; p < flows; ++p) {
    const std::byte* slot = arena_.Get(batch_items_[p].handle);
    const auto* source =
        reinterpret_cast<const std::uint8_t*>(slot + off_source_);
    for (std::size_t j = 0; j < n; ++j) {
      std::memcpy(staging_[j].data() + p * sb, source + j * sb, sb);
    }
  }

  coef_scratch_.resize(n);
  std::vector<fec::GfTerm> terms;
  terms.reserve(n);
  std::size_t group = flows;
  for (std::size_t s = 0; s < max_request; ++s) {
    // Shrink the group to flows still requesting more than s repairs.
    while (group > 0 && batch_items_[group - 1].request <= s) --group;
    if (group == 0) break;
    const std::size_t span_bytes = group * sb;

    const std::uint32_t seed = fec::PartySeed(0, ++seed_counter_);
    fec::RepairCoefficientsInto(seed, coef_scratch_);
    repair_dst_.assign(span_bytes, 0);
    terms.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (coef_scratch_[j] == 0) continue;
      terms.push_back(
          {coef_scratch_[j], std::span(staging_[j].data(), span_bytes)});
    }
    fec::GfAxpyN(repair_dst_, terms);
    ++stats_.batch_calls;
    stats_.batch_bytes += span_bytes;
    stats_.repairs_sent += group;
    obs::Observe("engine.batch.span_bytes", span_bytes);

    // Delivery and ingest, per flow. The repair crosses the erasure
    // channel whole; a delivered record's known columns are
    // substituted out against the destination's copies — equal to the
    // source's ground truth under the erasure model — so the banked
    // equation is exactly the repair projected onto the flow's missing
    // columns: rho = sum over missing m of coef[m] * source[m], the
    // d-term algebraic identity of "received data minus knowns".
    for (std::size_t p = 0; p < group; ++p) {
      std::byte* slot = arena_.Get(batch_items_[p].handle);
      auto* header = reinterpret_cast<NativeHeader*>(slot);
      const std::size_t d = header->missing_count;
      if (header->rank == d) continue;  // completed earlier this tick
      if (header->rng.Bernoulli(config_.record_loss)) continue;  // erased
      ++stats_.repairs_delivered;

      const auto* source =
          reinterpret_cast<const std::uint8_t*>(slot + off_source_);
      proj_coefs_.resize(d);
      proj_data_.assign(sb, 0);
      terms.clear();
      for (std::size_t i = 0; i < d; ++i) {
        const std::uint8_t m = header->missing[i];
        proj_coefs_[i] = coef_scratch_[m];
        if (proj_coefs_[i] == 0) continue;
        terms.push_back({proj_coefs_[i],
                         std::span(source + m * sb, sb)});
      }
      fec::GfAxpyN(proj_data_, terms);
      NativeSolver solver(*header, slot, *this);
      fec::EquationSink& sink = solver;  // the unified ingest surface
      sink.ConsumeEquationSpan(proj_coefs_, proj_data_);
    }
  }

  // Round bookkeeping: completion, failure, or the next wake-up.
  for (const BatchItem& item : batch_items_) {
    std::byte* slot = arena_.Get(item.handle);
    auto* header = reinterpret_cast<NativeHeader*>(slot);
    ++header->rounds_done;
    ++stats_.rounds;
    if (header->rank == header->missing_count) {
      FinishFlow(item.handle, /*decoded=*/true);
    } else if (header->rounds_done >= config_.max_rounds) {
      FinishFlow(item.handle, /*decoded=*/false);
    } else {
      queue_.Push(now_ + config_.round_interval, PackHandle(item.handle));
    }
  }
}

// One engine tick under kReedSolomon. Parity was precomputed at spawn,
// so a round is pure bookkeeping: each flow offers its lowest
// undelivered parity indices (one per still-needed symbol), each
// record crosses the erasure channel, and a delivered index is banked
// by flipping its pivot_live bit — no GF arithmetic until the single
// O(K log K) decode at completion. Any d distinct parities complete a
// deficit-d flow (MDS), and resending a lost index is always
// productive, so the needed set is just "the first d undelivered".
void FlowEngine::ProcessRsBatch() {
  const std::size_t m = config_.max_deficit;
  for (const BatchItem& item : batch_items_) {
    std::byte* slot = arena_.Get(item.handle);
    auto* header = reinterpret_cast<NativeHeader*>(slot);
    const std::size_t d = header->missing_count;
    std::size_t needed = d - header->rank;
    for (std::size_t j = 0; j < m && needed > 0; ++j) {
      if (header->pivot_live[j]) continue;
      --needed;
      ++stats_.repairs_sent;
      if (header->rng.Bernoulli(config_.record_loss)) continue;  // erased
      ++stats_.repairs_delivered;
      header->pivot_live[j] = 1;
      ++header->rank;
    }
    ++header->rounds_done;
    ++stats_.rounds;
    if (header->rank == d) {
      FinishFlow(item.handle, /*decoded=*/true);
    } else if (header->rounds_done >= config_.max_rounds) {
      FinishFlow(item.handle, /*decoded=*/false);
    } else {
      queue_.Push(now_ + config_.round_interval, PackHandle(item.handle));
    }
  }
}

void FlowEngine::FinishFlow(FlowHandle handle, bool decoded) {
  std::byte* slot = arena_.Get(handle);
  auto* header = reinterpret_cast<NativeHeader*>(slot);
  if (decoded) {
    // The recovered columns must reproduce the ground truth exactly;
    // anything else is an engine bug, not a channel outcome.
    const auto* source =
        reinterpret_cast<const std::uint8_t*>(slot + off_source_);
    const std::size_t sb = config_.symbol_bytes;
    if (config_.codec == fec::CodecKind::kReedSolomon) {
      // The one GF(2^16) decode of the flow's lifetime: surviving
      // columns plus the banked parity indices in, the erased columns
      // out.
      rs_decoder_->Reset();
      const std::uint8_t* missing = header->missing;
      const std::uint8_t* missing_end = missing + header->missing_count;
      for (std::size_t i = 0; i < config_.n_source; ++i) {
        if (missing != missing_end && *missing == i) {
          ++missing;
          continue;
        }
        rs_decoder_->AddSourceSpan(i, std::span(source + i * sb, sb));
      }
      const auto* parity =
          reinterpret_cast<const std::uint8_t*>(slot + off_coefs_);
      for (std::size_t j = 0; j < config_.max_deficit; ++j) {
        if (!header->pivot_live[j]) continue;
        rs_decoder_->AddParitySpan(j, std::span(parity + j * sb, sb));
      }
      rs_decoder_->Decode();
      for (std::size_t i = 0; i < header->missing_count; ++i) {
        const auto recovered = rs_decoder_->Symbol(header->missing[i]);
        if (std::memcmp(recovered.data(), source + header->missing[i] * sb,
                        sb) != 0) {
          throw std::logic_error("FlowEngine: recovered symbol mismatch");
        }
      }
    } else {
      NativeSolver solver(*header, slot, *this);
      for (std::size_t i = 0; i < header->missing_count; ++i) {
        const auto recovered = solver.Recovered(i);
        if (std::memcmp(recovered.data(), source + header->missing[i] * sb,
                        sb) != 0) {
          throw std::logic_error("FlowEngine: recovered symbol mismatch");
        }
      }
    }
    ++stats_.flows_completed;
    obs::Count("engine.flows.completed");
  } else {
    ++stats_.flows_failed;
    obs::Count("engine.flows.failed");
  }
  arena_.Retire(handle);
}

std::size_t FlowEngine::RunUntil(std::uint64_t until) {
  std::size_t processed = 0;
  while (!queue_.Empty() && queue_.PeekTime() <= until) {
    processed += ProcessTick(queue_.PeekTime());
  }
  now_ = std::max(now_, until);
  return processed;
}

std::size_t FlowEngine::RunAll() {
  std::size_t processed = 0;
  while (!queue_.Empty()) {
    processed += ProcessTick(queue_.PeekTime());
  }
  return processed;
}

}  // namespace ppr::engine
