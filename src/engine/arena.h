// FlowArena: contiguous slab storage for per-flow session state.
//
// A base station serving millions of concurrent recovery sessions
// cannot afford one heap object (or several) per flow: allocation
// churn, pointer chasing, and fragmentation dominate long before the
// GF(256) arithmetic does. The arena hands out fixed-size slots carved
// from large slabs; a flow's whole state — header, source block,
// decoder rows — lives in one contiguous run of bytes, so the batch
// planner can gather thousands of flows with straight memcpys and the
// allocator never touches the heap after the slabs exist.
//
// Handles are generation-checked: retiring a slot bumps its
// generation, so a stale FlowHandle held past Retire() is detected
// (Get throws, Alive returns false) instead of silently reading a
// reused slot. The free list is LIFO, which makes slot reuse
// deterministic — the next Allocate after a Retire returns the same
// index with a new generation — and keeps the hot set compact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ppr::engine {

// A generation-checked reference to one arena slot. Value-type, 8
// bytes, safe to park in scheduler events: staleness is detected at
// dereference time, not trusted at hand-off time.
struct FlowHandle {
  std::uint32_t index = 0;
  std::uint32_t generation = 0;

  bool operator==(const FlowHandle&) const = default;
};

class FlowArena {
 public:
  // `slot_bytes` is the uniform per-flow state size; slabs hold
  // `slots_per_slab` slots each and are allocated as the flow count
  // grows (existing slabs never move, so spans into live slots stay
  // valid across growth).
  explicit FlowArena(std::size_t slot_bytes, std::size_t slots_per_slab = 1024);

  std::size_t slot_bytes() const { return slot_bytes_; }
  std::size_t active() const { return active_; }
  // Slots ever created (live + free-listed).
  std::size_t capacity() const { return generation_.size(); }

  // Claims a slot (reusing the most recently retired one first) and
  // returns its handle. The slot's bytes are NOT cleared: the caller
  // initializes its own layout.
  FlowHandle Allocate();

  // Releases the slot and invalidates every outstanding handle to it.
  // Throws std::logic_error on a stale or never-allocated handle.
  void Retire(FlowHandle handle);

  // True when `handle` names the current occupancy of its slot.
  bool Alive(FlowHandle handle) const;

  // The slot's storage; throws std::logic_error when the handle is
  // stale (use-after-retire) or out of range.
  std::byte* Get(FlowHandle handle);
  const std::byte* Get(FlowHandle handle) const;

 private:
  std::byte* SlotAddress(std::uint32_t index) const;
  void CheckLive(FlowHandle handle) const;

  std::size_t slot_bytes_;
  std::size_t slots_per_slab_;
  std::size_t active_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  // generation_[i] is the slot's current generation; even = free, odd =
  // live (Allocate and Retire each bump it once), so liveness needs no
  // separate flag and every retire invalidates outstanding handles.
  std::vector<std::uint32_t> generation_;
  std::vector<std::uint32_t> free_;  // LIFO
};

}  // namespace ppr::engine
