#include "engine/scheduler.h"

#include <utility>

namespace ppr::engine {

void EventQueue::Push(std::uint64_t time, std::uint64_t key) {
  heap_.push_back(FlowEvent{time, next_seq_++, key});
  SiftUp(heap_.size() - 1);
}

std::optional<FlowEvent> EventQueue::Pop() {
  if (heap_.empty()) return std::nullopt;
  FlowEvent out = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  return out;
}

std::size_t EventQueue::PopDue(std::uint64_t until,
                               std::vector<FlowEvent>& out) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.front().time <= until) {
    out.push_back(*Pop());
    ++n;
  }
  return n;
}

void EventQueue::SiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Later(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    std::size_t best = i;
    if (left < n && Later(heap_[best], heap_[left])) best = left;
    if (right < n && Later(heap_[best], heap_[right])) best = right;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

}  // namespace ppr::engine
