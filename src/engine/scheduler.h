// Event-driven virtual-time scheduler for the flow engine.
//
// The legacy drivers (RunRecoveryExchange and friends) block inside a
// per-session while loop: one flow's rounds run to completion before
// the next flow starts. At engine scale the loop inverts — every flow
// that has a round due NOW must surface together, so the batch planner
// can fuse their GF(256) work into long runs. The queue is a binary
// min-heap of (virtual_time, seq, key) events; `seq` is a global
// monotone tie-break, so same-time events pop in push order and the
// whole schedule is deterministic at any flow count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace ppr::engine {

// One scheduled wake-up. `key` is an opaque flow designator owned by
// the caller (the engine packs native FlowHandles and compat-session
// indexes into it).
struct FlowEvent {
  std::uint64_t time = 0;
  std::uint64_t seq = 0;
  std::uint64_t key = 0;
};

class EventQueue {
 public:
  bool Empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  // Earliest scheduled time; requires !Empty().
  std::uint64_t PeekTime() const { return heap_.front().time; }

  void Push(std::uint64_t time, std::uint64_t key);

  // Pops the earliest event (ties broken by push order), or nullopt
  // when the queue is empty.
  std::optional<FlowEvent> Pop();

  // Pops every event with time <= `until` into `out` (appended in
  // (time, seq) order). Returns how many were popped. This is the
  // batch planner's harvest: all flows runnable this tick, together.
  std::size_t PopDue(std::uint64_t until, std::vector<FlowEvent>& out);

 private:
  static bool Later(const FlowEvent& a, const FlowEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  std::vector<FlowEvent> heap_;  // min-heap by (time, seq)
  std::uint64_t next_seq_ = 0;
};

}  // namespace ppr::engine
