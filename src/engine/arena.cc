#include "engine/arena.h"

#include <stdexcept>

namespace ppr::engine {

FlowArena::FlowArena(std::size_t slot_bytes, std::size_t slots_per_slab)
    : slot_bytes_(slot_bytes), slots_per_slab_(slots_per_slab) {
  if (slot_bytes == 0 || slots_per_slab == 0) {
    throw std::invalid_argument("FlowArena: empty slot shape");
  }
}

std::byte* FlowArena::SlotAddress(std::uint32_t index) const {
  return slabs_[index / slots_per_slab_].get() +
         static_cast<std::size_t>(index % slots_per_slab_) * slot_bytes_;
}

FlowHandle FlowArena::Allocate() {
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(generation_.size());
    if (index / slots_per_slab_ >= slabs_.size()) {
      slabs_.push_back(
          std::make_unique<std::byte[]>(slots_per_slab_ * slot_bytes_));
    }
    generation_.push_back(0);
  }
  ++generation_[index];  // even -> odd: live
  ++active_;
  return FlowHandle{index, generation_[index]};
}

bool FlowArena::Alive(FlowHandle handle) const {
  return handle.index < generation_.size() &&
         (handle.generation & 1u) == 1u &&
         generation_[handle.index] == handle.generation;
}

void FlowArena::CheckLive(FlowHandle handle) const {
  if (!Alive(handle)) {
    throw std::logic_error("FlowArena: stale handle (use after retire?)");
  }
}

void FlowArena::Retire(FlowHandle handle) {
  CheckLive(handle);
  ++generation_[handle.index];  // odd -> even: free
  free_.push_back(handle.index);
  --active_;
}

std::byte* FlowArena::Get(FlowHandle handle) {
  CheckLive(handle);
  return SlotAddress(handle.index);
}

const std::byte* FlowArena::Get(FlowHandle handle) const {
  CheckLive(handle);
  return SlotAddress(handle.index);
}

}  // namespace ppr::engine
