#!/usr/bin/env python3
"""Gate GF(256) kernel performance against the committed baseline.

Usage:
    check_regression.py CURRENT BASELINE [--symbol-bytes N]
                        [--max-regression F] [--min-speedup F]
                        [--require-simd] [--strict]
                        [--extra-current PATH ...]

CURRENT and BASELINE are bench_fec.json files produced by
`micro_fec_bench --json <path>`. Each --extra-current (repeatable)
names another report whose records are merged into CURRENT before the
--strict presence check — the way stream_latency_bench --json results
join the micro-kernel report so the one committed baseline can cover
every bench binary. The gated metric is the dispatched-
over-scalar GfAxpy throughput RATIO at --symbol-bytes (default 1024):
ratios, not absolute MB/s, so the gate is robust to runner hardware
generation differences. The build fails (exit 1) when:

  * the current speedup regressed more than --max-regression (default
    0.20, i.e. 20%) relative to the baseline speedup, or
  * the current speedup is below --min-speedup (default 4.0) while a
    SIMD backend is active — the ROADMAP's ">= 4x scalar at 1 KiB"
    floor, or
  * --require-simd is set and the active backend is scalar (the hosted
    runner is expected to dispatch a vector kernel; losing that is
    itself a regression), or
  * --strict is set and a baseline record has no matching
    (bench, kernel, impl, symbol_bytes[, terms][, k]) record in
    CURRENT — a silently dropped benchmark would otherwise shrink
    coverage without tripping any ratio gate. Without --strict this
    only warns. Records missing a per-record "bench" field inherit the
    report's doc-level "bench" header, so one committed baseline can
    hold records from several bench binaries without ambiguity.
    Baseline records pinned to a GF(256) backend the current host
    cannot dispatch (the current report's "impls" header names what the
    host probed; e.g. gfni/avx512 records checked on a pre-GFNI
    runner) are skipped with a note rather than failed: the baseline
    is allowed to be measured on wider hardware than any one runner.

Refreshing the baseline (after an intentional kernel change):

    cmake --build build -j --target micro_fec_bench
    ./build/micro_fec_bench --json bench/baseline/bench_fec.json

on an idle machine, then commit the file. The committed baseline is
deliberately seeded with a conservative 5.0x dispatch speedup so the
gate tracks "did the vector kernel stop pulling its weight" rather than
one machine's peak; raise it once archived CI artifacts show a stable
higher ratio.
"""

import argparse
import json
import sys


# Every GF(256) backend the dispatcher can ever name; used to tell "a
# backend this host lacks" apart from non-backend impl tags like
# "ack-deficit" or "engine".
GF_BACKENDS = {"scalar", "ssse3", "avx2", "neon", "gfni", "avx512"}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    # Records without their own "bench" tag belong to the binary that
    # wrote the report: stamp the doc-level header down so merged
    # reports (and the one committed baseline) key unambiguously.
    bench = doc.get("bench")
    for rec in doc.get("results", []):
        rec.setdefault("bench", bench)
    return doc


def host_impls(doc):
    """GF backends the current host probed, from the report header."""
    raw = doc.get("impls")
    return set(raw.split(",")) if raw else None


def axpy_mbps(doc, path, impl, symbol_bytes, required=True):
    for rec in doc["results"]:
        if (rec.get("kernel") == "GfAxpy" and rec.get("impl") == impl
                and rec.get("symbol_bytes") == symbol_bytes):
            return rec["mb_per_s"]
    if required:
        sys.exit(f"{path}: no GfAxpy record for impl={impl} "
                 f"symbol_bytes={symbol_bytes}")
    # A missing BASELINE entry is expected right after a new bench name
    # or backend lands (the committed baseline predates it): warn and
    # let the caller skip the baseline-relative gate rather than fail
    # the build on a KeyError-shaped error.
    print(f"warning: {path}: no GfAxpy record for impl={impl} "
          f"symbol_bytes={symbol_bytes}; baseline-relative gate skipped "
          "(refresh the baseline to re-arm it)", file=sys.stderr)
    return None


def has_impl(doc, impl, symbol_bytes):
    return any(rec.get("kernel") == "GfAxpy" and rec.get("impl") == impl
               and rec.get("symbol_bytes") == symbol_bytes
               for rec in doc["results"])


def record_key(rec):
    return (rec.get("bench"), rec.get("kernel"), rec.get("impl"),
            rec.get("symbol_bytes"), rec.get("terms"), rec.get("k"))


def describe_key(key):
    bench, kernel, impl, symbol_bytes, terms, k = key
    desc = f"bench={bench} kernel={kernel}"
    if impl is not None:
        desc += f" impl={impl}"
    if symbol_bytes is not None:
        desc += f" symbol_bytes={symbol_bytes}"
    if terms is not None:
        desc += f" terms={terms}"
    if k is not None:
        desc += f" k={k}"
    return desc


def missing_from_current(cur_doc, base_doc, impls):
    """Baseline record keys with no matching record in the current report.

    Baseline records pinned to a GF backend the host cannot dispatch
    (per the current report's probed `impls`) are reported separately
    as skips, never failures.
    """
    have = {record_key(rec) for rec in cur_doc["results"]}
    missing, skipped = [], []
    for key in dict.fromkeys(record_key(rec) for rec in base_doc["results"]):
        if key in have:
            continue
        impl = key[2]
        if (impls is not None and impl in GF_BACKENDS and impl not in impls):
            skipped.append(key)
        else:
            missing.append(key)
    return missing, skipped


def speedup(doc, path, symbol_bytes, impl=None, required=True):
    impl = impl or doc.get("active_impl", "scalar")
    scalar = axpy_mbps(doc, path, "scalar", symbol_bytes, required=required)
    dispatched = axpy_mbps(doc, path, impl, symbol_bytes, required=required)
    if scalar is None or dispatched is None:
        return impl, None
    return impl, dispatched / scalar


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--symbol-bytes", type=int, default=1024)
    parser.add_argument("--max-regression", type=float, default=0.20)
    parser.add_argument("--min-speedup", type=float, default=4.0)
    parser.add_argument("--require-simd", action="store_true")
    parser.add_argument(
        "--strict", action="store_true",
        help="fail (instead of warn) when a baseline record is missing "
             "from the current report")
    parser.add_argument(
        "--extra-current", action="append", default=[], metavar="PATH",
        help="additional report whose records are merged into CURRENT "
             "before the --strict presence check (repeatable)")
    args = parser.parse_args()

    cur_doc, base_doc = load(args.current), load(args.baseline)
    for extra_path in args.extra_current:
        cur_doc["results"].extend(load(extra_path)["results"])
    failures = []
    missing, skipped = missing_from_current(cur_doc, base_doc,
                                            host_impls(cur_doc))
    for key in skipped:
        print(f"note: baseline record skipped (backend unavailable on this "
              f"host): {describe_key(key)}", file=sys.stderr)
    for key in missing:
        msg = f"baseline record missing from current report: {describe_key(key)}"
        if args.strict:
            failures.append(msg)
        else:
            print(f"warning: {msg}", file=sys.stderr)
    cur_impl, cur = speedup(cur_doc, args.current, args.symbol_bytes)
    # Compare like with like: when the baseline recorded the runner's
    # active backend, gate against that backend's ratio rather than the
    # (possibly wider) backend the baseline machine dispatched. A
    # baseline that predates the current bench name or backend entirely
    # downgrades the baseline-relative check to a warning.
    base_pin = cur_impl if has_impl(base_doc, cur_impl,
                                    args.symbol_bytes) else None
    base_impl, base = speedup(base_doc, args.baseline, args.symbol_bytes,
                              impl=base_pin, required=False)

    if base is None:
        print(f"baseline: no usable entry at {args.symbol_bytes} B")
    else:
        print(f"baseline: {base_impl} {base:.2f}x scalar at "
              f"{args.symbol_bytes} B")
    print(f"current:  {cur_impl} {cur:.2f}x scalar at "
          f"{args.symbol_bytes} B")

    if cur_impl == "scalar":
        if args.require_simd:
            failures.append(
                "active backend is scalar but --require-simd was given: "
                "the runner should dispatch a SIMD kernel")
        else:
            print("note: scalar-only host, ratio gates skipped")
    else:
        if base is not None:
            floor = (1.0 - args.max_regression) * base
            if cur < floor:
                failures.append(
                    f"dispatch speedup {cur:.2f}x regressed more than "
                    f"{args.max_regression:.0%} vs baseline {base:.2f}x "
                    f"(floor {floor:.2f}x)")
        if cur < args.min_speedup:
            baseline_note = (f" (baseline was {base:.2f}x)"
                             if base is not None else "")
            failures.append(
                f"dispatch speedup {cur:.2f}x is below the "
                f"{args.min_speedup:.1f}x floor{baseline_note}")

    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    if not failures:
        print("OK: GF(256) dispatch throughput within bounds")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
