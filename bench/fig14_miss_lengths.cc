// Figure 14: complementary CDF of the lengths of contiguous "misses"
// (incorrect codewords whose Hamming hint is at or below the threshold,
// so they are falsely labeled good) for thresholds eta = 1..4. The
// paper's saving grace: misses are short — mostly length 1 — and their
// length distribution decays faster than exponential, so the
// surrounding correctly-labeled bad codewords pull them into PP-ARQ's
// retransmitted chunks.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"

namespace {

using namespace ppr;
using namespace ppr::bench;

}  // namespace

int main() {
  PrintHeader("Figure 14",
              "CCDF of contiguous miss lengths for eta in {1,2,3,4}, "
              "6.9 Kbits/s/node, carrier sense OFF.\n"
              "Paper: ~30% of misses have length 1 and the distribution "
              "decays faster than exponential.");

  const std::vector<double> etas{1.0, 2.0, 3.0, 4.0};
  std::vector<IntHistogram> miss_lengths(etas.size());

  RunTestbed(kMediumLoad, /*carrier_sense=*/false, PaperSchemes(),
             [&](const sim::ReceptionRecord& record,
                 const sim::ReceiverModel& model) {
               // "Every received packet": only receptions the PHY
               // actually acquired, on links above the audibility floor.
               if (!record.preamble_sync && !record.postamble_sync) return;
               if (record.snr_db < 3.0) return;
               const std::size_t first = model.PayloadCwOffset();
               const std::size_t count = model.PayloadCwCount();
               for (std::size_t e = 0; e < etas.size(); ++e) {
                 std::size_t run = 0;
                 for (std::size_t i = 0; i < count; ++i) {
                   const auto& cw = record.trace[first + i];
                   const bool miss =
                       !cw.correct &&
                       static_cast<double>(cw.distance) <= etas[e];
                   if (miss) {
                     ++run;
                   } else if (run > 0) {
                     miss_lengths[e].Add(static_cast<long>(run));
                     run = 0;
                   }
                 }
                 if (run > 0) miss_lengths[e].Add(static_cast<long>(run));
               }
             });

  for (std::size_t e = 0; e < etas.size(); ++e) {
    std::printf("# eta = %.0f (misses: %zu runs)\n", etas[e],
                miss_lengths[e].Total());
    for (long len = 1; len <= 100; ++len) {
      const double ccdf = miss_lengths[e].CcdfAbove(len - 1);  // P(L >= len)
      if (ccdf <= 0.0) break;
      std::printf("%ld\t%.6f\n", len, ccdf);
    }
    std::printf("\n");
  }

  for (std::size_t e = 0; e < etas.size(); ++e) {
    if (miss_lengths[e].Total() == 0) continue;
    std::printf("summary: eta=%.0f: P(length=1)=%.3f\n", etas[e],
                static_cast<double>(miss_lengths[e].CountAt(1)) /
                    static_cast<double>(miss_lengths[e].Total()));
  }
  return 0;
}
