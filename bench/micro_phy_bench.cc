// Microbenchmarks for the PHY hot paths (google-benchmark): DSSS
// despreading (the per-codeword cost of producing SoftPHY hints), MSK
// modulation/demodulation, and waveform sync correlation.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "frame/frame_format.h"
#include "phy/channel.h"
#include "phy/chip_sequences.h"
#include "phy/despreader.h"
#include "phy/frame_sync.h"
#include "phy/msk_modem.h"
#include "phy/spreader.h"

namespace {

using namespace ppr;

void BM_DespreadHard(benchmark::State& state) {
  const phy::ChipCodebook codebook;
  Rng rng(1);
  BitVec bits;
  const auto codewords = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < codewords * 4; ++i) {
    bits.PushBack(rng.Bernoulli(0.5));
  }
  BitVec chips = phy::SpreadBits(codebook, bits);
  // Sprinkle chip errors so the decoder does real work.
  for (std::size_t i = 0; i < chips.size(); i += 13) chips.Flip(i);

  for (auto _ : state) {
    auto decoded = phy::DespreadHard(codebook, chips);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(codewords));
}
BENCHMARK(BM_DespreadHard)->Arg(64)->Arg(512)->Arg(3068);

void BM_DecodeHardSingle(benchmark::State& state) {
  const phy::ChipCodebook codebook;
  Rng rng(2);
  std::vector<phy::ChipWord> words(1024);
  for (auto& w : words) w = static_cast<phy::ChipWord>(rng.Next());
  std::size_t i = 0;
  for (auto _ : state) {
    int distance = 0;
    benchmark::DoNotOptimize(
        codebook.DecodeHard(words[i++ & 1023], &distance));
  }
}
BENCHMARK(BM_DecodeHardSingle);

void BM_MskModulate(benchmark::State& state) {
  phy::ModemConfig config;
  config.samples_per_chip = 4;
  const phy::MskModulator mod(config);
  Rng rng(3);
  BitVec chips;
  for (int i = 0; i < state.range(0); ++i) chips.PushBack(rng.Bernoulli(0.5));
  for (auto _ : state) {
    auto wave = mod.Modulate(chips);
    benchmark::DoNotOptimize(wave);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MskModulate)->Arg(1024)->Arg(16384);

void BM_MskDemodulate(benchmark::State& state) {
  phy::ModemConfig config;
  config.samples_per_chip = 4;
  const phy::MskModulator mod(config);
  const phy::MskDemodulator demod(config);
  Rng rng(4);
  BitVec chips;
  for (int i = 0; i < state.range(0); ++i) chips.PushBack(rng.Bernoulli(0.5));
  auto wave = mod.Modulate(chips);
  phy::AddAwgn(wave, 0.3, rng);
  for (auto _ : state) {
    auto soft = demod.Demodulate(wave, 0, chips.size());
    benchmark::DoNotOptimize(soft);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MskDemodulate)->Arg(1024)->Arg(16384);

void BM_SyncCorrelatorScan(benchmark::State& state) {
  phy::ModemConfig config;
  config.samples_per_chip = 4;
  const phy::ChipCodebook codebook;
  const phy::MskModulator mod(config);
  const auto pattern = frame::PreamblePatternOctets();
  const phy::WaveformCorrelator correlator(
      mod.Modulate(phy::SpreadBits(codebook, BitVec::FromBytes(pattern))));

  Rng rng(5);
  phy::SampleVec air(static_cast<std::size_t>(state.range(0)));
  for (auto& s : air) s = phy::Sample{rng.Normal(), rng.Normal()};

  for (auto _ : state) {
    auto hits = correlator.FindPeaks(air, 0.6, 128);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SyncCorrelatorScan)->Arg(8192)->Arg(32768);

void BM_ChipErrorMask(benchmark::State& state) {
  Rng rng(6);
  const double p = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::SampleChipErrorMask(rng, p));
  }
}
BENCHMARK(BM_ChipErrorMask)->Arg(1)->Arg(50)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
