// Shared driver code for the per-figure benchmark binaries. Each bench
// regenerates one table or figure of the paper: it runs the testbed (or
// waveform link) experiment at the paper's parameters, prints the same
// rows/series the paper plots, and finishes with a one-line summary of
// the headline comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/stats.h"
#include "sim/experiment.h"

namespace ppr::bench {

// ------------------------------------------------------- JSON reporter
// Minimal machine-readable output for bench artifacts: CI archives
// bench_fec.json and diffs it against bench/baseline/ (see
// bench/check_regression.py), so the emitter favors a stable flat
// schema over generality.

using JsonScalar = std::variant<std::int64_t, double, std::string>;
using JsonRecord = std::vector<std::pair<std::string, JsonScalar>>;

// Writes {"schema": 1, header..., records_key: [records...]} to `path`.
// Returns false (with a note on stderr) when the file cannot be
// written.
bool WriteJsonReport(const std::string& path, const JsonRecord& header,
                     const std::string& records_key,
                     const std::vector<JsonRecord>& records);

// The paper's three offered loads (bits/s per node, section 7.2).
inline constexpr double kModerateLoad = 3'500.0;
inline constexpr double kMediumLoad = 6'900.0;
inline constexpr double kHighLoad = 13'800.0;

// Simulated seconds per experiment. Long enough for stable per-link
// statistics, short enough that every bench finishes in seconds.
inline constexpr double kSimDuration = 40.0;

// The six delivery variants of Figures 8-10: {Packet CRC, Fragmented
// CRC, PPR} x {no postamble, postamble}.
std::vector<sim::SchemeConfig> PaperSchemes(std::size_t num_fragments = 30,
                                            double eta = 6.0);

// Runs the 27-node testbed at the given load/carrier-sense setting with
// the paper's frame size.
sim::ExperimentResult RunTestbed(double load_bps, bool carrier_sense,
                                 const std::vector<sim::SchemeConfig>& schemes,
                                 const sim::ReceptionObserver& observer = nullptr,
                                 double duration_s = kSimDuration);

// Prints "x<TAB>F(x)" rows for a CDF, preceded by "# label".
void PrintCdf(const std::string& label, const CdfCollector& cdf,
              std::size_t points = 25);

// Prints a gnuplot-style comment header for a figure/table.
void PrintHeader(const std::string& figure, const std::string& description);

// Per-link FDR samples for one scheme index.
CdfCollector LinkFdrCdf(const sim::ExperimentResult& result,
                        std::size_t scheme_index);

// Per-link goodput samples (bits/s) for one scheme index.
CdfCollector LinkThroughputCdf(const sim::ExperimentResult& result,
                               const std::vector<sim::SchemeConfig>& schemes,
                               std::size_t scheme_index);

}  // namespace ppr::bench
