// Prints one available GF(256) kernel backend per line (kScalar first),
// then the active default prefixed with "active:". CI's differential
// leg iterates the plain lines to re-run the fec/arq test binaries once
// per backend via PPR_GF256_FORCE_IMPL, proving bit-identical decoding
// on whatever the hosted runner supports.
#include <cstdio>
#include <string>

#include "fec/gf256.h"

int main() {
  for (const auto impl : ppr::fec::GfAvailableImpls()) {
    std::printf("%s\n", std::string(ppr::fec::GfImplName(impl)).c_str());
  }
  std::fprintf(stderr, "active: %s\n",
               std::string(ppr::fec::GfImplName(ppr::fec::GfActiveImpl()))
                   .c_str());
  return 0;
}
