// Microbenchmarks for the src/fec/ coded-repair subsystem: the GF(256)
// axpy kernel (the inner loop of RLNC encode and Gaussian elimination),
// repair-symbol generation, and full decoder runs at varying erasure
// counts. Encoding runs per repair symbol on the sender's hot path, so
// axpy throughput bounds how fast a busy sender can service deficits.
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "fec/gf256.h"
#include "fec/rlnc.h"

namespace {

using namespace ppr;

std::vector<std::uint8_t> RandomBytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  return out;
}

std::vector<std::vector<std::uint8_t>> RandomBlock(Rng& rng, std::size_t n,
                                                   std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> block(n);
  for (auto& s : block) s = RandomBytes(rng, bytes);
  return block;
}

void BM_GfAxpy(benchmark::State& state) {
  Rng rng(601);
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  auto dst = RandomBytes(rng, len);
  const auto src = RandomBytes(rng, len);
  std::uint8_t coef = 2;
  for (auto _ : state) {
    fec::GfAxpy(dst, coef, src);
    coef = static_cast<std::uint8_t>(coef == 255 ? 2 : coef + 1);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_GfAxpy)->Arg(32)->Arg(256)->Arg(4096)->Arg(65536);

void BM_GfAxpyXorFastPath(benchmark::State& state) {
  Rng rng(602);
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  auto dst = RandomBytes(rng, len);
  const auto src = RandomBytes(rng, len);
  for (auto _ : state) {
    fec::GfAxpy(dst, 1, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_GfAxpyXorFastPath)->Arg(4096)->Arg(65536);

// One repair symbol over a 250-byte-packet source block (the fig16
// link's shape: 508 codewords -> 64 symbols of 4 bytes at the default
// geometry, or fewer, larger symbols).
void BM_RlncMakeRepair(benchmark::State& state) {
  Rng rng(603);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  const fec::RlncEncoder encoder(RandomBlock(rng, n, bytes));
  std::uint32_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.MakeRepair(seed++));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * bytes));
}
BENCHMARK(BM_RlncMakeRepair)->Args({64, 4})->Args({64, 32})->Args({128, 32});

// Decoder cost to fill `erasures` missing symbols with repair symbols
// (systematic rows enter first, as in a PP-ARQ session).
void BM_RlncDecode(benchmark::State& state) {
  Rng rng(604);
  const std::size_t n = 64, bytes = 32;
  const std::size_t erasures = static_cast<std::size_t>(state.range(0));
  const auto block = RandomBlock(rng, n, bytes);
  const fec::RlncEncoder encoder(block);
  std::vector<fec::RepairSymbol> repairs;
  for (std::uint32_t s = 1; s <= erasures + 4; ++s) {
    repairs.push_back(encoder.MakeRepair(s));
  }
  for (auto _ : state) {
    fec::RlncDecoder decoder(n, bytes);
    for (std::size_t i = erasures; i < n; ++i) decoder.AddSource(i, block[i]);
    std::size_t r = 0;
    while (!decoder.Complete() && r < repairs.size()) {
      decoder.AddRepair(repairs[r++]);
    }
    benchmark::DoNotOptimize(decoder.rank());
  }
}
BENCHMARK(BM_RlncDecode)->Arg(4)->Arg(16)->Arg(64);

// A relay's repair symbol: masked combination over the ~3/4 of the
// source block it overheard cleanly.
void BM_RlncMaskedRepair(benchmark::State& state) {
  Rng rng(605);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  const auto block = RandomBlock(rng, n, bytes);
  std::vector<bool> have(n, true);
  for (std::size_t i = 0; i < n; i += 4) have[i] = false;
  std::uint32_t counter = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fec::MakeMaskedRepair(block, have, fec::PartySeed(1, counter++)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * bytes));
}
BENCHMARK(BM_RlncMaskedRepair)->Args({64, 8})->Args({64, 32});

}  // namespace

// Custom main so CI can run `micro_fec_bench --smoke`: every benchmark
// executes once-ish (bit-rot guard) without paying full measurement
// time.
int main(int argc, char** argv) {
  static char min_time[] = "--benchmark_min_time=0.001";
  std::vector<char*> args(argv, argv + argc);
  for (auto& arg : args) {
    if (std::string_view(arg) == "--smoke") arg = min_time;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
