// Microbenchmarks for the src/fec/ coded-repair subsystem: the GF(256)
// axpy kernel (the inner loop of RLNC encode and Gaussian elimination),
// repair-symbol generation, and full decoder runs at varying erasure
// counts. Encoding runs per repair symbol on the sender's hot path, so
// axpy throughput bounds how fast a busy sender can service deficits.
//
// Modes:
//   (default)        Google-Benchmark run; GfAxpy/GfAxpyN sweeps are
//                    registered once per available GF(256) backend.
//   --smoke          every benchmark executes once-ish (CI bit-rot guard).
//   --json <path>    skips Google Benchmark and writes the backend sweep
//                    (GfAxpy MB/s per backend per symbol size, 8 B-8 KiB)
//                    as machine-readable JSON. CI archives the file and
//                    bench/check_regression.py gates the scalar-vs-
//                    dispatch ratio against bench/baseline/bench_fec.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "fec/gf256.h"
#include "fec/rlnc.h"

namespace {

using namespace ppr;

// 8 B is the default PP-ARQ FEC symbol (4-bit codewords x 16 per
// symbol) — the sub-vector-width regime must stay on the scoreboard.
constexpr std::size_t kSweepSizes[] = {8, 32, 64, 256, 1024, 4096, 8192};
constexpr std::size_t kAxpyNTerms = 16;

std::vector<std::uint8_t> RandomBytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  return out;
}

std::vector<std::vector<std::uint8_t>> RandomBlock(Rng& rng, std::size_t n,
                                                   std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> block(n);
  for (auto& s : block) s = RandomBytes(rng, bytes);
  return block;
}

void BM_GfAxpy(benchmark::State& state, fec::GfImpl impl) {
  fec::GfImplScope guard(impl);
  if (!guard.ok()) {
    state.SkipWithError("backend unavailable");
    return;
  }
  Rng rng(601);
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  auto dst = RandomBytes(rng, len);
  const auto src = RandomBytes(rng, len);
  std::uint8_t coef = 2;
  for (auto _ : state) {
    fec::GfAxpy(dst, coef, src);
    coef = static_cast<std::uint8_t>(coef == 255 ? 2 : coef + 1);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}

// One burst of kAxpyNTerms combinations into a single accumulator, the
// shape of RlncEncoder::MakeRepair and the decoder's elimination sweep.
void BM_GfAxpyN(benchmark::State& state, fec::GfImpl impl) {
  fec::GfImplScope guard(impl);
  if (!guard.ok()) {
    state.SkipWithError("backend unavailable");
    return;
  }
  Rng rng(606);
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  auto dst = RandomBytes(rng, len);
  const auto block = RandomBlock(rng, kAxpyNTerms, len);
  std::vector<fec::GfTerm> terms;
  std::uint8_t coef = 2;
  for (const auto& s : block) terms.push_back({coef++, s});
  for (auto _ : state) {
    fec::GfAxpyN(dst, terms);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len * kAxpyNTerms));
}

void BM_GfAxpyXorFastPath(benchmark::State& state) {
  Rng rng(602);
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  auto dst = RandomBytes(rng, len);
  const auto src = RandomBytes(rng, len);
  for (auto _ : state) {
    fec::GfAxpy(dst, 1, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_GfAxpyXorFastPath)->Arg(4096)->Arg(65536);

// One repair symbol over a 250-byte-packet source block (the fig16
// link's shape: 508 codewords -> 64 symbols of 4 bytes at the default
// geometry, or fewer, larger symbols).
void BM_RlncMakeRepair(benchmark::State& state) {
  Rng rng(603);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  const fec::RlncEncoder encoder(RandomBlock(rng, n, bytes));
  std::uint32_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.MakeRepair(seed++));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * bytes));
}
BENCHMARK(BM_RlncMakeRepair)->Args({64, 4})->Args({64, 32})->Args({128, 32});

// Decoder cost to fill `erasures` missing symbols with repair symbols
// (systematic rows enter first, as in a PP-ARQ session).
void BM_RlncDecode(benchmark::State& state) {
  Rng rng(604);
  const std::size_t n = 64, bytes = 32;
  const std::size_t erasures = static_cast<std::size_t>(state.range(0));
  const auto block = RandomBlock(rng, n, bytes);
  const fec::RlncEncoder encoder(block);
  std::vector<fec::RepairSymbol> repairs;
  for (std::uint32_t s = 1; s <= erasures + 4; ++s) {
    repairs.push_back(encoder.MakeRepair(s));
  }
  for (auto _ : state) {
    fec::RlncDecoder decoder(n, bytes);
    for (std::size_t i = erasures; i < n; ++i) decoder.AddSource(i, block[i]);
    std::size_t r = 0;
    while (!decoder.Complete() && r < repairs.size()) {
      decoder.AddRepair(repairs[r++]);
    }
    benchmark::DoNotOptimize(decoder.rank());
  }
}
BENCHMARK(BM_RlncDecode)->Arg(4)->Arg(16)->Arg(64);

// A relay's repair symbol: masked combination over the ~3/4 of the
// source block it overheard cleanly.
void BM_RlncMaskedRepair(benchmark::State& state) {
  Rng rng(605);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  const auto block = RandomBlock(rng, n, bytes);
  std::vector<bool> have(n, true);
  for (std::size_t i = 0; i < n; i += 4) have[i] = false;
  std::uint32_t counter = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fec::MakeMaskedRepair(block, have, fec::PartySeed(1, counter++)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * bytes));
}
BENCHMARK(BM_RlncMaskedRepair)->Args({64, 8})->Args({64, 32});

void RegisterBackendSweeps() {
  for (const fec::GfImpl impl : fec::GfAvailableImpls()) {
    const std::string suffix(fec::GfImplName(impl));
    auto* axpy = benchmark::RegisterBenchmark(("BM_GfAxpy/" + suffix).c_str(),
                                              BM_GfAxpy, impl);
    auto* axpyn = benchmark::RegisterBenchmark(
        ("BM_GfAxpyN/" + suffix).c_str(), BM_GfAxpyN, impl);
    for (const std::size_t len : kSweepSizes) {
      axpy->Arg(static_cast<std::int64_t>(len));
      axpyn->Arg(static_cast<std::int64_t>(len));
    }
  }
}

// ------------------------------------------------------- --json sweep
// Self-timed (steady_clock) rather than Google-Benchmark-driven so the
// emitted schema stays ours: one flat record per (kernel, backend,
// symbol size), consumed by bench/check_regression.py and the README
// performance table.

double MbPerSec(std::size_t bytes_per_rep, double seconds, std::size_t reps) {
  return static_cast<double>(bytes_per_rep) * static_cast<double>(reps) /
         seconds / 1e6;
}

template <typename Fn>
double MeasureMbps(std::size_t bytes_per_rep, Fn&& rep) {
  using Clock = std::chrono::steady_clock;
  // Warm caches and tables, then grow the batch until the timed region
  // is long enough (>= 50 ms) to dwarf clock granularity.
  for (int i = 0; i < 8; ++i) rep();
  std::size_t reps = 64;
  double best = 0.0;
  for (;;) {
    const auto begin = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) rep();
    const std::chrono::duration<double> elapsed = Clock::now() - begin;
    if (elapsed.count() < 0.05) {
      reps *= 4;
      continue;
    }
    best = std::max(best, MbPerSec(bytes_per_rep, elapsed.count(), reps));
    break;
  }
  // Best of three full batches: the CI regression gate hard-fails on
  // the ratio of two of these numbers, so one noisy-neighbor stall on a
  // shared runner must not masquerade as a kernel regression.
  for (int round = 0; round < 2; ++round) {
    const auto begin = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) rep();
    const std::chrono::duration<double> elapsed = Clock::now() - begin;
    best = std::max(best, MbPerSec(bytes_per_rep, elapsed.count(), reps));
  }
  return best;
}

int RunJsonSweep(const std::string& path) {
  std::vector<bench::JsonRecord> records;
  for (const fec::GfImpl impl : fec::GfAvailableImpls()) {
    fec::GfImplScope guard(impl);
    const std::string name(fec::GfImplName(impl));
    for (const std::size_t len : kSweepSizes) {
      Rng rng(601);
      auto dst = RandomBytes(rng, len);
      const auto src = RandomBytes(rng, len);
      std::uint8_t coef = 2;
      const double axpy_mbps = MeasureMbps(len, [&] {
        fec::GfAxpy(dst, coef, src);
        coef = static_cast<std::uint8_t>(coef == 255 ? 2 : coef + 1);
      });
      records.push_back({{"kernel", std::string("GfAxpy")},
                         {"impl", name},
                         {"symbol_bytes", static_cast<std::int64_t>(len)},
                         {"mb_per_s", axpy_mbps}});

      const auto block = RandomBlock(rng, kAxpyNTerms, len);
      std::vector<fec::GfTerm> terms;
      std::uint8_t c = 2;
      for (const auto& s : block) terms.push_back({c++, s});
      const double axpyn_mbps = MeasureMbps(
          len * kAxpyNTerms, [&] { fec::GfAxpyN(dst, terms); });
      records.push_back({{"kernel", std::string("GfAxpyN")},
                         {"impl", name},
                         {"symbol_bytes", static_cast<std::int64_t>(len)},
                         {"terms", static_cast<std::int64_t>(kAxpyNTerms)},
                         {"mb_per_s", axpyn_mbps}});
      std::fprintf(stderr, "%-6s %5zu B  GfAxpy %9.1f MB/s  GfAxpyN %9.1f MB/s\n",
                   name.c_str(), len, axpy_mbps, axpyn_mbps);
    }
  }
  // `impls` names every backend this host can dispatch, so the
  // regression checker can tell "benchmark dropped" (a coverage
  // regression) from "backend unavailable on this runner" (a committed
  // baseline measured on wider hardware, e.g. GFNI/AVX-512 records
  // checked against a pre-GFNI CI machine).
  std::string impls;
  for (const fec::GfImpl impl : fec::GfAvailableImpls()) {
    if (!impls.empty()) impls += ",";
    impls += std::string(fec::GfImplName(impl));
  }
  const bench::JsonRecord header = {
      {"bench", std::string("micro_fec_bench")},
      {"active_impl", std::string(fec::GfImplName(fec::GfActiveImpl()))},
      {"impls", impls}};
  if (!bench::WriteJsonReport(path, header, "results", records)) return 1;
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

// Custom main: `--smoke` shrinks every benchmark to once-ish execution
// (CI bit-rot guard); `--json <path>` runs the self-timed backend sweep
// instead of Google Benchmark.
int main(int argc, char** argv) {
  static char min_time[] = "--benchmark_min_time=0.001";
  std::vector<char*> args;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      args.push_back(min_time);
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "micro_fec_bench: missing path after --json\n");
        return 1;
      }
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return RunJsonSweep(json_path);
  RegisterBackendSweeps();
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
