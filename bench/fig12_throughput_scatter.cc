// Figure 12: scatter of end-to-end per-link throughput with fragmented
// CRC on the x-axis and either packet-level CRC or PPR on the y-axis,
// for all three offered loads (carrier sense off). PPR sits above the
// diagonal by a roughly constant factor; packet CRC falls far below it,
// increasingly so at higher loads.
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace ppr;
using namespace ppr::bench;

void RunLoad(double load_bps, const char* label) {
  const auto schemes = PaperSchemes();
  // Scheme indices (postamble variants, as PPR runs with its full
  // frame format): 1 = Packet CRC, 3 = Fragmented CRC, 5 = PPR.
  const std::size_t kPacket = 1, kFrag = 3, kPpr = 5;
  const auto result = RunTestbed(load_bps, /*carrier_sense=*/false, schemes);

  std::printf("# %s: frag_crc_kbps\tpacket_crc_kbps\tppr_kbps\n", label);
  double frag_sum = 0.0, packet_sum = 0.0, ppr_sum = 0.0;
  for (const auto& link : result.links) {
    if (link.frames_sent == 0) continue;
    const double frag = link.ThroughputBps(kFrag, schemes[kFrag],
                                           result.payload_octets,
                                           result.duration_s) / 1000.0;
    const double packet = link.ThroughputBps(kPacket, schemes[kPacket],
                                             result.payload_octets,
                                             result.duration_s) / 1000.0;
    const double ppr_tput = link.ThroughputBps(kPpr, schemes[kPpr],
                                               result.payload_octets,
                                               result.duration_s) / 1000.0;
    std::printf("%.4f\t%.4f\t%.4f\n", frag, packet, ppr_tput);
    frag_sum += frag;
    packet_sum += packet;
    ppr_sum += ppr_tput;
  }
  std::printf("\nsummary %s: aggregate frag=%.1f packet=%.1f ppr=%.1f "
              "Kbits/s (ppr/frag=%.2fx, frag/packet=%.2fx)\n\n",
              label, frag_sum, packet_sum, ppr_sum,
              frag_sum > 0 ? ppr_sum / frag_sum : 0.0,
              packet_sum > 0 ? frag_sum / packet_sum : 0.0);
}

}  // namespace

int main() {
  PrintHeader("Figure 12",
              "Per-link throughput scatter: fragmented CRC (x) vs packet "
              "CRC and PPR (y),\nat 3.5/6.9/13.8 Kbits/s/node, carrier "
              "sense OFF.");
  RunLoad(kModerateLoad, "3.5 Kbits/s/node");
  RunLoad(kMediumLoad, "6.9 Kbits/s/node");
  RunLoad(kHighLoad, "13.8 Kbits/s/node");
  return 0;
}
