// Figure 13: anatomy of a partial packet reception during a collision,
// on the full waveform PHY. Two overlapping transmissions reach one
// receiver; for each recovered packet we print the per-codeword Hamming
// distance over time (codeword number) together with correctness
// markers, showing that the hint tracks exactly which parts of each
// packet survived — including the first packet's tail recovered via its
// postamble.
//
// A second section replays the same idea on the shared broadcast
// medium (ppr::core::WaveformMedium): ONE collided transmission heard
// by the destination and two overhearers at different interferer
// powers. Under a shared interferer the per-codeword hint traces line
// up — the same burst span flares at every listener, scaled by each
// listener's geometry — which is exactly the correlation the
// independent per-hop model cannot produce.
//
//   --smoke   accepted for CI symmetry (the figure is already small)
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "phy/channel.h"
#include "ppr/medium.h"
#include "ppr/receiver_pipeline.h"

namespace {

using namespace ppr;

// Prints the per-codeword Hamming hint traces of one shared-medium
// transmission, one column per listener, every fourth codeword.
void PrintListenerTraces(const BitVec& body,
                         const std::vector<core::WaveformMedium::Reception>&
                             receptions) {
  std::printf("# codeword\t");
  for (std::size_t l = 0; l < receptions.size(); ++l) {
    std::printf("ham%zu\tok%zu\t", l, l);
  }
  std::printf("\n");
  const std::size_t n = receptions.front().symbols.size();
  for (std::size_t k = 0; k < n; k += 4) {
    std::printf("%zu\t", k);
    for (const auto& r : receptions) {
      const bool ok = r.symbols[k].symbol == body.ReadUint(4 * k, 4);
      std::printf("%d\t%d\t", r.symbols[k].hamming_distance, ok ? 1 : 0);
    }
    std::printf("\n");
  }
  for (std::size_t l = 0; l < receptions.size(); ++l) {
    std::size_t wrong = 0, lo = n, hi = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (receptions[l].symbols[k].symbol != body.ReadUint(4 * k, 4)) {
        ++wrong;
        lo = std::min(lo, k);
        hi = std::max(hi, k);
      }
    }
    if (wrong == 0) {
      std::printf("# listener %zu: clean (collided=%d)\n", l,
                  receptions[l].collided ? 1 : 0);
    } else {
      std::printf("# listener %zu: %zu wrong codewords in [%zu, %zu]\n", l,
                  wrong, lo, hi);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke is accepted for CI symmetry; the figure is already small,
  // so every invocation runs the same configuration.
  (void)argc;
  (void)argv;
  bench::PrintHeader(
      "Figure 13",
      "Partial packet reception during two concurrent transmissions:\n"
      "per-codeword Hamming distance and correctness, for both packets.\n"
      "Packet 2 (strong, near sender) is preamble-synced; packet 1's\n"
      "tail collides with it. Packet 1 is the weaker earlier packet\n"
      "whose end survives; packet 2 buries its middle.");

  core::PipelineConfig config;
  config.modem.samples_per_chip = 4;
  config.max_payload_octets = 256;
  const core::FrameModulator mod(config.modem);
  const core::ReceiverPipeline rx(config);
  Rng rng(1306);

  // Two 110-byte packets; the second (stronger, +6 dB) starts 55% into
  // the first — the "undesirable capture" situation of Figure 5.
  const std::size_t octets = 110;
  std::vector<std::uint8_t> p1(octets), p2(octets);
  for (auto& b : p1) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  for (auto& b : p2) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  frame::FrameHeader h1;
  h1.length = octets;
  h1.dst = 2;
  h1.src = 10;
  h1.seq = 1;
  frame::FrameHeader h2 = h1;
  h2.src = 11;
  h2.seq = 2;

  auto w1 = mod.Modulate(h1, p1);
  auto w2 = mod.Modulate(h2, p2);
  phy::ApplyCarrierOffset(w1, 0.0, 1.3);
  phy::ApplyCarrierOffset(w2, 0.0, 4.9);
  phy::ApplyGain(w2, 2.0);  // the later packet captures the receiver

  const std::size_t start1 = 600;
  const std::size_t start2 = start1 + (w1.size() * 55) / 100;
  phy::SampleVec air(start2 + w2.size() + 600, phy::Sample{0.0, 0.0});
  phy::MixInto(air, w1, start1);
  phy::MixInto(air, w2, start2);
  phy::AddAwgn(air, phy::NoiseSigmaForEcN0(std::pow(10.0, 1.0), 1.0, 4), rng);

  const auto frames = rx.Process(air);
  std::printf("recovered %zu frame(s)\n\n", frames.size());

  for (const auto& f : frames) {
    const auto octs = frame::BuildFrameOctets(f.header, f.header.seq == 1
                                                            ? p1
                                                            : p2);
    const BitVec true_bits = BitVec::FromBytes(octs);
    const std::size_t body_bit0 = frame::kSyncPrefixOctets * 8;
    std::printf("# packet %u (%s sync, score %.2f): codeword\thamming\t"
                "correct\n",
                f.header.seq,
                f.sync == core::RecoveredFrame::SyncSource::kPreamble
                    ? "preamble"
                    : "postamble",
                f.sync_score);
    std::size_t correct_cws = 0;
    for (std::size_t k = 0; k < f.body_symbols.size(); ++k) {
      const auto true_nibble = true_bits.ReadUint(body_bit0 + 4 * k, 4);
      const bool correct = f.body_symbols[k].symbol == true_nibble;
      if (correct) ++correct_cws;
      // Print every fourth codeword, as the paper's figure does.
      if (k % 4 == 0) {
        std::printf("%zu\t%d\t%d\n", k, f.body_symbols[k].hamming_distance,
                    correct ? 1 : 0);
      }
    }
    std::printf("# packet %u: %zu/%zu body codewords correct\n\n",
                f.header.seq, correct_cws, f.body_symbols.size());
  }

  // ---- Correlated overhearing on the shared medium -------------------
  std::printf(
      "\n# shared-medium anatomy: one collided transmission, three\n"
      "# listeners (destination @ +3 dB interferer, overhearer @ +6 dB,\n"
      "# far overhearer @ -12 dB), noise effectively off so the burst\n"
      "# is the only impairment. Same span flares everywhere, scaled\n"
      "# by geometry.\n");
  core::SharedClimate climate;
  climate.collision_probability = 1.0;  // forced collision
  climate.interferer_octets = 50;
  auto medium = core::WaveformMedium::Create(
      arq::CollisionCorrelation::kSharedInterferer, /*medium_seed=*/1306,
      climate);
  core::WaveformListenerParams listener;
  listener.pipeline = config;
  listener.ec_n0_db = 12.0;
  listener.seed = 1;
  listener.interferer_relative_db = 3.0;
  medium->AddListener(listener);  // destination
  listener.seed = 2;
  listener.interferer_relative_db = 6.0;
  medium->AddListener(listener);  // overhearer near the interferer
  listener.seed = 3;
  listener.interferer_relative_db = -12.0;
  medium->AddListener(listener);  // overhearer far from the interferer

  BitVec body;
  for (std::size_t i = 0; i < octets * 2; ++i) {
    body.AppendUint(rng.UniformInt(16), 4);
  }
  const auto receptions = medium->Transmit({body});
  PrintListenerTraces(body, receptions);
  return 0;
}
