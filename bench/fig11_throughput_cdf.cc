// Figure 11: end-to-end per-link throughput CDF at 6.9 Kbits/s/node
// (near channel saturation), carrier sense disabled. Throughput counts
// correctly delivered payload bits normalized by each scheme's airtime
// overhead (per-fragment CRCs, trailer+postamble).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace ppr::bench;
  PrintHeader("Figure 11",
              "End-to-end per-link throughput (Kbits/s) CDF at 6.9 "
              "Kbits/s/node offered load,\ncarrier sense OFF, 1500-byte "
              "frames.");

  const auto schemes = PaperSchemes();
  const auto result =
      RunTestbed(kMediumLoad, /*carrier_sense=*/false, schemes);

  for (std::size_t k = 0; k < schemes.size(); ++k) {
    // Report in Kbits/s like the paper's axis.
    ppr::CdfCollector kbps;
    for (const auto& link : result.links) {
      if (link.frames_sent == 0) continue;
      kbps.Add(link.ThroughputBps(k, schemes[k], result.payload_octets,
                                  result.duration_s) /
               1000.0);
    }
    PrintCdf(schemes[k].Name() + " [Kbits/s]", kbps);
  }

  const double base = LinkThroughputCdf(result, schemes, 0).Median();
  const double ppr_post = LinkThroughputCdf(result, schemes, 5).Median();
  std::printf("summary: median per-link throughput, PPR+postamble vs "
              "Packet CRC/no postamble: %.2fx\n",
              base > 0.0 ? ppr_post / base : 0.0);
  return 0;
}
