// Figure 8: per-link equivalent frame delivery rate CDF with carrier
// sense ENABLED at moderate offered load (3.5 Kbits/s/node). Postamble
// decoding roughly doubles the median frame delivery rate; PPR
// dominates fragmented CRC, which dominates whole-packet CRC.
#include "fdr_figures.h"

int main() {
  ppr::bench::PrintHeader(
      "Figure 8",
      "Per-link equivalent frame delivery rate CDF, carrier sense ON,\n"
      "3.5 Kbits/s/node offered load, 1500-byte frames.");
  ppr::bench::RunFdrFigure(ppr::bench::kModerateLoad, /*carrier_sense=*/true);
  return 0;
}
