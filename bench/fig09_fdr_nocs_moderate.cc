// Figure 9: per-link equivalent frame delivery rate CDF with carrier
// sense DISABLED at moderate offered load. Whole-packet CRC collapses
// (every collision kills the whole frame); PPR and fragmented CRC stay
// close to their carrier-sense performance because collisions only
// corrupt part of each frame.
#include "fdr_figures.h"

int main() {
  ppr::bench::PrintHeader(
      "Figure 9",
      "Per-link equivalent frame delivery rate CDF, carrier sense OFF,\n"
      "3.5 Kbits/s/node offered load, 1500-byte frames.");
  ppr::bench::RunFdrFigure(ppr::bench::kModerateLoad, /*carrier_sense=*/false);
  return 0;
}
