// Stream recovery-latency benchmark: runs the sliding-window streaming
// sweep (sim::RunStreamRecoveryExperiment) on a bursty erasure link and
// reports per-controller recovery-latency percentiles, goodput, and
// repair-bit overhead.
//
// The binary doubles as the acceptance gate for the deadline
// controller: at the pinned lossy comparison point it exits nonzero
// unless the deadline policy beats the reactive ack-deficit policy on
// p95 recovery latency at equal-or-lower repair overhead. Everything is
// virtual-time deterministic, so the gate holds at any thread count and
// in CI.
//
// Usage:
//   stream_latency_bench                  full sweep, human summary
//   stream_latency_bench --smoke          reduced sweep (CI smoke legs)
//   stream_latency_bench --json <path>    also write a flat JSON report
//                                         (kernel=StreamLatency records,
//                                         merged into the regression
//                                         gate via --extra-current)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/stream_experiment.h"
#include "stream/redundancy.h"

namespace {

using ppr::sim::RunStreamRecoveryExperiment;
using ppr::sim::StreamExperimentResult;
using ppr::sim::StreamPointResult;
using ppr::sim::StreamSweepConfig;
using ppr::stream::ControllerKind;
using ppr::stream::ControllerKindName;

// The pinned comparison point for the acceptance gate: a clearly lossy,
// bursty link and a shallow window — the deadline-limited regime, where
// a reactive controller's feedback-interval lag both stalls the window
// (backpressure) and inflates its repair spend. The smoke sweep keeps
// exactly this point so the gate runs even in the reduced
// configuration.
constexpr double kGateLoss = 0.15;
constexpr std::size_t kGateWindow = 16;

StreamSweepConfig MakeConfig(bool smoke, std::uint64_t seed) {
  StreamSweepConfig config;
  config.seed = seed;
  config.session.feedback_interval_us = 16'000;
  if (smoke) {
    config.loss_rates = {kGateLoss};
    config.window_sizes = {kGateWindow};
    config.session.total_packets = 2'000;
  } else {
    config.loss_rates = {0.05, kGateLoss, 0.25};
    config.window_sizes = {kGateWindow, 32};
    // Long flows: with mean burst length 3 the per-flow overhead and
    // tail-latency estimates need thousands of packets to stabilize
    // enough for a hard pass/fail gate.
    config.session.total_packets = 2'000;
  }
  return config;
}

void PrintSummary(const StreamExperimentResult& result) {
  std::fprintf(stderr,
               "%-6s %-7s %-11s %9s %9s %9s %9s %9s\n",
               "loss", "window", "controller", "p50_us", "p95_us", "p99_us",
               "goodput", "overhead");
  for (const StreamPointResult& p : result.points) {
    std::fprintf(stderr,
                 "%-6.2f %-7zu %-11s %9.0f %9.0f %9.0f %9.0f %9.3f\n",
                 p.loss_rate, p.window_size,
                 std::string(ControllerKindName(p.controller)).c_str(),
                 p.p50_latency_us, p.p95_latency_us, p.p99_latency_us,
                 p.goodput_pps, p.repair_overhead);
  }
}

// Deadline must buy its latency win with proactive repair that costs no
// more than the reactive policy's retransmission-driven spend.
int CheckAcceptanceGate(const StreamExperimentResult& result) {
  const StreamPointResult* deadline =
      result.Find(kGateLoss, kGateWindow, ControllerKind::kDeadline);
  const StreamPointResult* deficit =
      result.Find(kGateLoss, kGateWindow, ControllerKind::kAckDeficit);
  if (deadline == nullptr || deficit == nullptr) {
    std::fprintf(stderr, "gate: comparison point missing from sweep\n");
    return 1;
  }
  std::fprintf(stderr,
               "gate @ loss=%.2f window=%zu: deadline p95 %.0f us vs "
               "ack-deficit p95 %.0f us, overhead %.3f vs %.3f "
               "(repairs %zu vs %zu)\n",
               kGateLoss, kGateWindow, deadline->p95_latency_us,
               deficit->p95_latency_us, deadline->repair_overhead,
               deficit->repair_overhead, deadline->stats.repair_sent,
               deficit->stats.repair_sent);
  if (deadline->p95_latency_us >= deficit->p95_latency_us) {
    std::fprintf(stderr, "gate FAILED: deadline p95 not below ack-deficit\n");
    return 1;
  }
  if (deadline->repair_overhead > deficit->repair_overhead) {
    std::fprintf(stderr,
                 "gate FAILED: deadline overhead above ack-deficit\n");
    return 1;
  }
  std::fprintf(stderr, "gate passed\n");
  return 0;
}

int WriteReport(const StreamExperimentResult& result,
                const StreamSweepConfig& config, const std::string& path) {
  std::vector<ppr::bench::JsonRecord> records;
  for (const StreamPointResult& p : result.points) {
    records.push_back(
        {{"kernel", std::string("StreamLatency")},
         {"impl", std::string(ControllerKindName(p.controller))},
         {"symbol_bytes",
          static_cast<std::int64_t>(config.session.symbol_bytes)},
         {"terms", static_cast<std::int64_t>(p.window_size)},
         {"loss_rate", p.loss_rate},
         {"p50_latency_us", p.p50_latency_us},
         {"p95_latency_us", p.p95_latency_us},
         {"p99_latency_us", p.p99_latency_us},
         {"goodput_pps", p.goodput_pps},
         {"repair_overhead", p.repair_overhead}});
  }
  const ppr::bench::JsonRecord header = {
      {"bench", std::string("stream_latency_bench")}};
  if (!ppr::bench::WriteJsonReport(path, header, "results", records)) {
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool dump_metrics = false;
  std::string json_path;
  std::uint64_t seed = StreamSweepConfig{}.seed;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--dump-metrics") == 0) {
      dump_metrics = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json <path>] [--seed <n>] "
                   "[--dump-metrics]\n",
                   argv[0]);
      return 2;
    }
  }

  const StreamSweepConfig config = MakeConfig(smoke, seed);
  const StreamExperimentResult result = RunStreamRecoveryExperiment(config);
  PrintSummary(result);
  if (dump_metrics) {
    std::fprintf(stderr, "%s\n", result.metrics.ToJson().c_str());
  }
  if (!json_path.empty() && WriteReport(result, config, json_path) != 0) {
    return 1;
  }
  return CheckAcceptanceGate(result);
}
