// Figure 16, relay variant: repair-traffic comparison across all three
// recovery strategies on a fig16-style waveform link whose direct path
// is degraded while a nearby relay overhears the source cleanly and
// reaches the destination over a strong hop. The headline number is the
// split of repair bits between source and relay under kRelayCodedRepair
// versus the source-only total under kCodedRepair.
//
//   --smoke   run a 3-packet configuration (CI bit-rot guard)
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "common/stats.h"
#include "ppr/link.h"

int main(int argc, char** argv) {
  using namespace ppr;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::PrintHeader(
      "Figure 16 (relay variant)",
      "Repair traffic for chunk retransmission, sender-only coded\n"
      "repair, and relay-assisted coded repair; 250-byte packets over a\n"
      "degraded direct waveform link with a strong overhearing relay.\n"
      "Relay mode splits each burst by who is cheaper to hear.");

  core::WaveformChannelParams direct;
  direct.pipeline.modem.samples_per_chip = 4;
  direct.pipeline.max_payload_octets = 400;
  direct.ec_n0_db = 4.5;               // degraded direct path
  direct.collision_probability = 0.5;  // busy neighborhood
  direct.interferer_relative_db = 3.0;
  direct.interferer_octets = 60;
  direct.seed = 1701;

  core::RelayWaveformParams relay;
  relay.overhear = direct;
  relay.overhear.ec_n0_db = 10.0;  // the relay hears the source well
  relay.overhear.collision_probability = 0.2;
  relay.overhear.seed = 1702;
  relay.relay_link = direct;
  relay.relay_link.ec_n0_db = 10.0;  // and reaches the destination well
  relay.relay_link.collision_probability = 0.2;
  relay.relay_link.seed = 1703;

  arq::PpArqConfig arq_config;

  struct ModeTotals {
    CdfCollector retx_bytes;
    std::size_t completed = 0;
    std::size_t repair_bits = 0;
    std::size_t feedback_bits = 0;
  };
  ModeTotals chunk, coded, relayed;
  std::size_t relay_source_bits = 0;
  std::size_t relay_relay_bits = 0;
  const auto account = [](ModeTotals& m, const arq::ArqRunStats& stats) {
    if (stats.success) ++m.completed;
    m.feedback_bits += stats.feedback_bits;
    for (const auto bits : stats.retransmission_bits) {
      m.retx_bytes.Add(static_cast<double>(bits) / 8.0);
      m.repair_bits += bits;
    }
  };

  const int packets = smoke ? 3 : 30;
  for (int i = 0; i < packets; ++i) {
    const auto cmp = core::CompareRecoveryStrategies(
        250, arq_config, direct, /*payload_seed=*/1704 + i, &relay);
    account(chunk, cmp.chunk);
    account(coded, cmp.coded);
    account(relayed, cmp.relay->totals);
    relay_source_bits += cmp.relay->parties[arq::kSessionSourceId].repair_bits;
    relay_relay_bits += cmp.relay->parties[arq::kSessionRelayId].repair_bits;
  }

  if (!chunk.retx_bytes.Empty()) {
    bench::PrintCdf("chunk retransmission frame size (bytes)",
                    chunk.retx_bytes);
  }
  if (!coded.retx_bytes.Empty()) {
    bench::PrintCdf("coded repair frame size (bytes)", coded.retx_bytes);
  }
  if (!relayed.retx_bytes.Empty()) {
    bench::PrintCdf("relay-coded repair frame size (bytes)",
                    relayed.retx_bytes);
  }
  std::printf(
      "packets: %d\n"
      "chunk-retransmit:   completed %zu, repair %zu bytes\n"
      "coded-repair:       completed %zu, repair %zu bytes (all source)\n"
      "relay-coded-repair: completed %zu, repair %zu bytes "
      "(source %zu, relay %zu)\n",
      packets, chunk.completed, chunk.repair_bits / 8, coded.completed,
      coded.repair_bits / 8, relayed.completed, relayed.repair_bits / 8,
      relay_source_bits / 8, relay_relay_bits / 8);
  if (coded.repair_bits > 0) {
    std::printf(
        "summary: relay mode moved %.0f%% of repair bits off the source; "
        "source repair traffic is %.0f%% of sender-only coded repair\n",
        relay_source_bits + relay_relay_bits
            ? 100.0 * static_cast<double>(relay_relay_bits) /
                  static_cast<double>(relay_source_bits + relay_relay_bits)
            : 0.0,
        100.0 * static_cast<double>(relay_source_bits) /
            static_cast<double>(coded.repair_bits));
  }
  return 0;
}
