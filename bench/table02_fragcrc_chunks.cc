// Table 2: fragmented-CRC end-to-end aggregate throughput as a function
// of the number of chunks per 1500-byte packet. Small chunk counts lose
// whole fragments to scattered errors; large counts drown in checksum
// overhead. The paper picks 30 chunks (50-byte fragments).
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace ppr;
using namespace ppr::bench;

}  // namespace

int main() {
  PrintHeader("Table 2",
              "Fragmented CRC aggregate throughput vs chunks per packet, "
              "under heavy offered load.\n"
              "Paper row order: 1, 10, 30, 100, 300 chunks; peak at ~30.");

  const std::size_t chunk_counts[] = {1, 10, 30, 100, 300};

  std::vector<sim::SchemeConfig> schemes;
  for (const std::size_t chunks : chunk_counts) {
    sim::SchemeConfig c;
    c.scheme = sim::Scheme::kFragmentedCrc;
    c.postamble = true;
    c.num_fragments = chunks;
    schemes.push_back(c);
  }

  const auto result = RunTestbed(kHighLoad, /*carrier_sense=*/false, schemes);

  std::printf("%-18s%s\n", "Number of chunks", "Aggregate throughput (Kbits/s)");
  double best_tput = 0.0;
  std::size_t best_chunks = 0;
  for (std::size_t k = 0; k < schemes.size(); ++k) {
    double aggregate_bps = 0.0;
    for (const auto& link : result.links) {
      aggregate_bps += link.ThroughputBps(k, schemes[k], result.payload_octets,
                                          result.duration_s);
    }
    std::printf("%-18zu%.1f\n", chunk_counts[k], aggregate_bps / 1000.0);
    if (aggregate_bps > best_tput) {
      best_tput = aggregate_bps;
      best_chunks = chunk_counts[k];
    }
  }
  std::printf("\nsummary: throughput peaks at %zu chunks per packet "
              "(paper: 30)\n", best_chunks);
  return 0;
}
