// Figure 10: per-link equivalent frame delivery rate CDF at high
// offered load (13.8 Kbits/s/node), carrier sense disabled. Packet-level
// CRC degrades substantially; PPR's delivery rate stays high because
// collisions corrupt only relatively small parts of most frames.
#include "fdr_figures.h"

int main() {
  ppr::bench::PrintHeader(
      "Figure 10",
      "Per-link equivalent frame delivery rate CDF, carrier sense OFF,\n"
      "13.8 Kbits/s/node offered load, 1500-byte frames.");
  ppr::bench::RunFdrFigure(ppr::bench::kHighLoad, /*carrier_sense=*/false);
  return 0;
}
