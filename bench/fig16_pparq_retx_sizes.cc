// Figure 16: sizes of PP-ARQ partial retransmission packets on a
// single waveform link transferring back-to-back 250-byte packets (the
// section 7.5 experiment: one GNU Radio sender, one receiver). The
// paper's median retransmission is about half the full packet size.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "ppr/link.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 16",
      "CDF of PP-ARQ partial-retransmission sizes (bytes), 250-byte\n"
      "packets back-to-back over one noisy/bursty waveform link.\n"
      "Paper: median retransmission ~ half the packet size.");

  core::WaveformChannelParams params;
  params.pipeline.modem.samples_per_chip = 4;
  params.pipeline.max_payload_octets = 400;
  params.ec_n0_db = 5.0;              // marginal link
  params.collision_probability = 0.5;  // busy neighborhood
  params.interferer_relative_db = 3.0;
  params.interferer_octets = 60;
  params.seed = 1601;

  arq::PpArqConfig arq_config;
  Rng payload_rng(1602);

  CdfCollector retx_bytes;
  std::size_t packets = 0, completed = 0, total_retx = 0;
  const int kPackets = 40;
  for (int i = 0; i < kPackets; ++i) {
    const auto stats =
        core::RunWaveformPpArq(250, arq_config, params, payload_rng);
    ++packets;
    if (stats.success) ++completed;
    for (const auto bits : stats.retransmission_bits) {
      retx_bytes.Add(static_cast<double>(bits) / 8.0);
      ++total_retx;
    }
  }

  if (!retx_bytes.Empty()) {
    bench::PrintCdf("partial retransmission size (bytes)", retx_bytes);
  }
  std::printf("packets: %zu, completed: %zu, retransmissions: %zu\n",
              packets, completed, total_retx);
  if (!retx_bytes.Empty()) {
    std::printf("summary: median retransmission %.0f bytes of a 250-byte "
                "packet (%.0f%%)\n",
                retx_bytes.Median(), 100.0 * retx_bytes.Median() / 250.0);
  }
  return 0;
}
