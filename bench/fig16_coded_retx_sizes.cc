// Figure 16, coded-repair variant: repair-traffic comparison between
// PP-ARQ's chunk retransmission and the network-coded repair strategy
// (src/fec/) on the same waveform link as fig16_pparq_retx_sizes —
// back-to-back 250-byte packets over a noisy, collision-prone channel.
// Each packet runs under BOTH strategies with identically seeded
// channels, so the repair-byte totals are directly comparable.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "ppr/link.h"

int main() {
  using namespace ppr;
  bench::PrintHeader(
      "Figure 16 (coded variant)",
      "CDF of repair-frame sizes (bytes) for chunk retransmission vs\n"
      "RLNC coded repair, 250-byte packets over one noisy/bursty\n"
      "waveform link. Coded feedback is a 4-byte deficit report; repair\n"
      "frames are sized by the erasure estimate, not chunk extents.");

  core::WaveformChannelParams params;
  params.pipeline.modem.samples_per_chip = 4;
  params.pipeline.max_payload_octets = 400;
  params.ec_n0_db = 5.0;               // marginal link
  params.collision_probability = 0.5;  // busy neighborhood
  params.interferer_relative_db = 3.0;
  params.interferer_octets = 60;
  params.seed = 1601;

  arq::PpArqConfig arq_config;

  struct ModeTotals {
    CdfCollector retx_bytes;
    std::size_t completed = 0;
    std::size_t repair_bits = 0;
    std::size_t feedback_bits = 0;
    std::size_t retransmissions = 0;
  };
  ModeTotals chunk, coded;
  const auto account = [](ModeTotals& m, const arq::ArqRunStats& stats) {
    if (stats.success) ++m.completed;
    m.feedback_bits += stats.feedback_bits;
    for (const auto bits : stats.retransmission_bits) {
      m.retx_bytes.Add(static_cast<double>(bits) / 8.0);
      m.repair_bits += bits;
      ++m.retransmissions;
    }
  };

  const int kPackets = 40;
  for (int i = 0; i < kPackets; ++i) {
    const auto cmp = core::CompareRecoveryStrategies(
        250, arq_config, params, /*payload_seed=*/1602 + i);
    account(chunk, cmp.chunk);
    account(coded, cmp.coded);
  }

  if (!chunk.retx_bytes.Empty()) {
    bench::PrintCdf("chunk retransmission frame size (bytes)",
                    chunk.retx_bytes);
  }
  if (!coded.retx_bytes.Empty()) {
    bench::PrintCdf("coded repair frame size (bytes)", coded.retx_bytes);
  }
  std::printf(
      "packets: %d\n"
      "chunk-retransmit: completed %zu, retransmissions %zu, "
      "repair %zu bytes, feedback %zu bytes\n"
      "coded-repair:     completed %zu, retransmissions %zu, "
      "repair %zu bytes, feedback %zu bytes\n",
      kPackets, chunk.completed, chunk.retransmissions,
      chunk.repair_bits / 8, chunk.feedback_bits / 8, coded.completed,
      coded.retransmissions, coded.repair_bits / 8, coded.feedback_bits / 8);
  if (chunk.repair_bits > 0) {
    std::printf("summary: coded repair traffic is %.0f%% of chunk "
                "retransmission traffic; feedback %.0f%%\n",
                100.0 * static_cast<double>(coded.repair_bits) /
                    static_cast<double>(chunk.repair_bits),
                chunk.feedback_bits
                    ? 100.0 * static_cast<double>(coded.feedback_bits) /
                          static_cast<double>(chunk.feedback_bits)
                    : 0.0);
  }
  return 0;
}
