// Figure 16, multi-relay variant: repair-traffic scaling with the
// relay roster on a fig16-style waveform link. The same degraded
// direct path is run with 0, 1, 2, and 4 overhearing relays (0 = plain
// sender-only coded repair), each relay's overhear and delivery hop a
// real AWGN+collision channel, and the dense roster additionally under
// a per-round relay airtime budget to show ExOR-style deferral.
//
// A second table sweeps CollisionCorrelation over the 2-relay roster:
// the same climate with private per-hop interferer draws (independent,
// the legacy model) vs one shared interferer draw per transmission
// projected through every listener (ppr::core::WaveformMedium). The
// joint-loss columns show why the distinction matters: under a shared
// interferer the overhearers lose their copies exactly when the
// destination does (P(ovh|dir) -> 1), so the relays' repair value
// collapses and the source carries the bulk of the burden.
//
//   --smoke   run a 2-packet configuration (CI bit-rot guard)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "ppr/link.h"

int main(int argc, char** argv) {
  using namespace ppr;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::PrintHeader(
      "Figure 16 (multi-relay variant)",
      "Repair traffic vs relay roster size: the same degraded direct\n"
      "waveform link recovered with 0/1/2/4 overhearing relays, plus\n"
      "the 4-relay roster under a per-round relay airtime budget\n"
      "(relays served best-overhear-quality-first, ExOR-style), and a\n"
      "correlation sweep: independent vs shared-interferer collisions\n"
      "across the destination and the overhearers.");

  core::WaveformChannelParams direct;
  direct.pipeline.modem.samples_per_chip = 4;
  direct.pipeline.max_payload_octets = 400;
  direct.ec_n0_db = 4.5;               // degraded direct path
  direct.collision_probability = 0.5;  // busy neighborhood
  direct.interferer_relative_db = 3.0;
  direct.interferer_octets = 60;

  const auto relay_hop = [&](double ec_n0_db, std::uint64_t seed) {
    core::WaveformChannelParams p = direct;
    p.ec_n0_db = ec_n0_db;
    p.collision_probability = 0.2;
    p.seed = seed;
    return p;
  };

  struct Leg {
    std::size_t relays;
    std::size_t budget_bits;  // 0 = unlimited
  };
  const std::vector<Leg> legs = {{0, 0}, {1, 0}, {2, 0}, {4, 0}, {4, 1200}};
  const int packets = smoke ? 2 : 20;
  const std::size_t payload_octets = smoke ? 150 : 250;

  std::printf(
      "%7s %9s %10s %12s %12s %12s %10s\n", "relays", "budget", "completed",
      "src bytes", "relay bytes", "round max", "deferrals");
  for (const auto& leg : legs) {
    std::size_t completed = 0, source_bits = 0, relay_bits = 0;
    std::size_t max_round = 0, deferrals = 0;
    for (int i = 0; i < packets; ++i) {
      arq::PpArqConfig config;
      config.relay_airtime_budget_bits = leg.budget_bits;
      Rng payload_rng(1704 + i);
      if (leg.relays == 0) {
        config.recovery = arq::RecoveryMode::kCodedRepair;
        core::WaveformChannelParams params = direct;
        params.seed = 1701;
        const auto stats = core::RunWaveformPpArq(payload_octets, config,
                                                  params, payload_rng);
        if (stats.success) ++completed;
        for (const auto bits : stats.retransmission_bits) {
          source_bits += bits;
        }
        continue;
      }
      std::vector<core::RelayWaveformParams> relays(leg.relays);
      for (std::size_t r = 0; r < relays.size(); ++r) {
        // Staggered overhear quality ranks the relays ExOR-style.
        relays[r].overhear =
            relay_hop(10.0 - static_cast<double>(r), 1800 + 2 * r);
        relays[r].relay_link = relay_hop(10.0, 1801 + 2 * r);
      }
      core::WaveformChannelParams params = direct;
      params.seed = 1701;
      const auto stats = core::RunWaveformMultiRelayRecovery(
          payload_octets, config, params, relays, payload_rng);
      if (stats.totals.success) ++completed;
      source_bits += stats.parties[arq::kSessionSourceId].repair_bits;
      for (std::size_t p = arq::kSessionRelayId; p < stats.parties.size();
           ++p) {
        relay_bits += stats.parties[p].repair_bits;
      }
      max_round = std::max(max_round, stats.max_round_relay_bits);
      deferrals += stats.relay_deferrals;
    }
    char budget[32];
    if (leg.budget_bits == 0) {
      std::snprintf(budget, sizeof budget, "-");
    } else {
      std::snprintf(budget, sizeof budget, "%zuB", leg.budget_bits / 8);
    }
    std::printf("%7zu %9s %7zu/%-2d %12zu %12zu %12zu %10zu\n", leg.relays,
                budget, completed, packets, source_bits / 8, relay_bits / 8,
                max_round / 8, deferrals);
  }
  std::printf(
      "\nsrc/relay bytes: repair traffic per party class; round max: the\n"
      "largest per-round relay airtime (what the budget caps).\n");

  // Correlation sweep: identical climate, 2 relays, per-packet seeds
  // varied so each packet is a fresh interferer realization.
  std::printf(
      "\n# correlation sweep (2 relays, per-packet channel seeds)\n"
      "%12s %10s %12s %12s %8s %8s %11s\n", "correlation", "completed",
      "src bytes", "relay bytes", "dir loss", "joint", "P(ovh|dir)");
  for (const auto corr : {arq::CollisionCorrelation::kIndependent,
                          arq::CollisionCorrelation::kSharedInterferer}) {
    std::size_t completed = 0, source_bits = 0, relay_bits = 0;
    arq::SharedMediumStats joint;
    for (int i = 0; i < packets; ++i) {
      arq::PpArqConfig config;
      core::WaveformChannelParams params = direct;
      params.collision_probability = 0.7;
      params.seed = 1701 + 31 * static_cast<std::uint64_t>(i);
      std::vector<core::RelayWaveformParams> relays(2);
      for (std::size_t r = 0; r < relays.size(); ++r) {
        relays[r].overhear = relay_hop(10.0, 1800 + 100 * i + 2 * r);
        relays[r].overhear.collision_probability =
            params.collision_probability;
        relays[r].relay_link = relay_hop(10.0, 1801 + 100 * i + 2 * r);
      }
      Rng payload_rng(1704 + i);
      core::WaveformMediumStats medium;
      const auto stats = core::RunWaveformMultiRelayRecovery(
          payload_octets, config, params, relays, payload_rng, corr, &medium);
      if (stats.totals.success) ++completed;
      source_bits += stats.parties[arq::kSessionSourceId].repair_bits;
      for (std::size_t p = arq::kSessionRelayId; p < stats.parties.size();
           ++p) {
        relay_bits += stats.parties[p].repair_bits;
      }
      joint.broadcast_frames += medium.medium.broadcast_frames;
      joint.reference_corrupted_frames +=
          medium.medium.reference_corrupted_frames;
      joint.joint_corrupted_frames += medium.medium.joint_corrupted_frames;
    }
    std::printf("%12s %7zu/%-2d %12zu %12zu %8zu %8zu %11.2f\n",
                corr == arq::CollisionCorrelation::kIndependent
                    ? "independent"
                    : "shared",
                completed, packets, source_bits / 8, relay_bits / 8,
                joint.reference_corrupted_frames,
                joint.joint_corrupted_frames,
                arq::OverhearLossGivenDirectLoss(joint));
  }
  std::printf(
      "\ndir loss: initial transmissions whose destination copy was\n"
      "corrupted; joint: of those, an overhearer's copy died too;\n"
      "P(ovh|dir): the overhear-loss-given-direct-loss correlation the\n"
      "shared medium creates (private draws keep it at coincidence\n"
      "level).\n");
  return 0;
}
