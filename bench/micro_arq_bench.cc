// Microbenchmarks for the PP-ARQ receiver algorithms: the O(L^3)
// dynamic-programming chunking, the run-length transform, and the
// feedback codec. These run per received packet, so their cost bounds
// the receiver's feedback latency.
#include <benchmark/benchmark.h>

#include "arq/chunking.h"
#include "arq/feedback.h"
#include "common/rng.h"
#include "softphy/runlength.h"

namespace {

using namespace ppr;

std::vector<bool> RandomLabels(Rng& rng, std::size_t n, double p_bad,
                               double p_stay) {
  // Two-state Markov labels: bursts of bad codewords, like collisions.
  std::vector<bool> labels(n, true);
  bool bad = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (bad) {
      bad = rng.Bernoulli(p_stay);
    } else {
      bad = rng.Bernoulli(p_bad);
    }
    labels[i] = !bad;
  }
  return labels;
}

void BM_RunLengthTransform(benchmark::State& state) {
  Rng rng(11);
  const auto labels = RandomLabels(
      rng, static_cast<std::size_t>(state.range(0)), 0.02, 0.8);
  for (auto _ : state) {
    auto form = softphy::ToRunLengthForm(labels);
    benchmark::DoNotOptimize(form);
  }
}
BENCHMARK(BM_RunLengthTransform)->Arg(608)->Arg(3068);

void BM_DpChunking(benchmark::State& state) {
  Rng rng(12);
  // Construct a run-length form with exactly range(0) bad runs.
  const auto L = static_cast<std::size_t>(state.range(0));
  softphy::RunLengthForm form;
  form.leading_good = 10;
  for (std::size_t i = 0; i < L; ++i) {
    form.bad.push_back(1 + rng.UniformInt(8));
    form.good_after.push_back(rng.UniformInt(40));
  }
  arq::ChunkingConfig config;
  config.packet_bits = 12000;
  for (auto _ : state) {
    auto result = arq::ComputeOptimalChunks(form, config);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DpChunking)->Arg(4)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void BM_FeedbackEncode(benchmark::State& state) {
  Rng rng(13);
  const std::size_t total = 3068;
  BitVec body;
  for (std::size_t i = 0; i < total * 4; ++i) {
    body.PushBack(rng.Bernoulli(0.5));
  }
  arq::FeedbackPacket fb;
  fb.seq = 1;
  std::size_t cursor = 0;
  for (int i = 0; i < 12; ++i) {
    const std::size_t offset = cursor + 20 + rng.UniformInt(100);
    const std::size_t length = 1 + rng.UniformInt(30);
    if (offset + length >= total) break;
    fb.requests.push_back(arq::CodewordRange{offset, length});
    cursor = offset + length;
  }
  for (auto _ : state) {
    auto wire = arq::EncodeFeedback(fb, body, total, 4, 32);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_FeedbackEncode);

void BM_FeedbackDecode(benchmark::State& state) {
  Rng rng(14);
  const std::size_t total = 3068;
  BitVec body;
  for (std::size_t i = 0; i < total * 4; ++i) {
    body.PushBack(rng.Bernoulli(0.5));
  }
  arq::FeedbackPacket fb;
  fb.seq = 1;
  fb.requests = {{100, 30}, {500, 12}, {1500, 60}, {2900, 20}};
  const BitVec wire = arq::EncodeFeedback(fb, body, total, 4, 32);
  for (auto _ : state) {
    auto decoded = arq::DecodeFeedback(wire, total, 4, 32);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_FeedbackDecode);

}  // namespace

BENCHMARK_MAIN();
