// Figure 15: complementary CDF of Hamming distance for every CORRECT
// codeword — equivalently, the false-alarm rate at threshold eta: the
// fraction of correct codewords falsely labeled incorrect (and thus
// needlessly retransmitted). The cost of a false alarm is one codeword
// of airtime, and the paper measures ~5 in 1000 at eta = 6.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"

namespace {

using namespace ppr;
using namespace ppr::bench;

void RunLoad(double load_bps, const char* label) {
  IntHistogram correct;
  RunTestbed(load_bps, /*carrier_sense=*/false, PaperSchemes(),
             [&](const sim::ReceptionRecord& record,
                 const sim::ReceiverModel& model) {
               // "Every received packet": only receptions the PHY
               // actually acquired, on links above the audibility floor.
               if (!record.preamble_sync && !record.postamble_sync) return;
               if (record.snr_db < 3.0) return;
               const std::size_t first = model.PayloadCwOffset();
               const std::size_t count = model.PayloadCwCount();
               for (std::size_t i = 0; i < count; ++i) {
                 const auto& cw = record.trace[first + i];
                 if (cw.correct) correct.Add(cw.distance);
               }
             });

  std::printf("# %s, correct codewords (n=%zu): eta\tfalse_alarm_rate\n",
              label, correct.Total());
  for (long eta = 0; eta <= 12; ++eta) {
    std::printf("%ld\t%.6f\n", eta, correct.CcdfAbove(eta));
  }
  std::printf("\nsummary: %s: false alarm rate at eta=6: %.5f "
              "(paper: ~0.005)\n\n",
              label, correct.CcdfAbove(6));
}

}  // namespace

int main() {
  PrintHeader("Figure 15",
              "CCDF of Hamming distance over correct codewords (= false "
              "alarm rate at threshold eta),\nat 3.5/6.9/13.8 "
              "Kbits/s/node, carrier sense OFF.");
  RunLoad(kModerateLoad, "3.5 Kbits/s/node");
  RunLoad(kMediumLoad, "6.9 Kbits/s/node");
  RunLoad(kHighLoad, "13.8 Kbits/s/node");
  return 0;
}
