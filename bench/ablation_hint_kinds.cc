// Ablation: the three SoftPHY hint options of section 3.1 — Hamming
// distance (hard decision), soft-decision correlation margin, and
// matched-filter energy — plus the SOVA-style Viterbi reliability of
// section 8.1, compared as binary classifiers of codeword correctness
// on the same noisy receptions. The paper found HDD and SDD "not
// significant[ly]" different for collision-dominated errors; this bench
// quantifies each hint's miss/false-alarm tradeoff (AUC-style sweep).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "phy/channel.h"
#include "phy/convolutional.h"
#include "phy/despreader.h"
#include "phy/spreader.h"

namespace {

using namespace ppr;

struct Sample {
  double hint;
  bool correct;
};

// Sweeps thresholds over collected (hint, correct) samples and reports
// the false-alarm rate at ~10% miss rate, plus a rank statistic (the
// probability a random incorrect codeword has a higher hint than a
// random correct one — AUC).
void Report(const char* name, std::vector<Sample> samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.hint < b.hint; });
  std::size_t n_correct = 0, n_incorrect = 0;
  for (const auto& s : samples) {
    (s.correct ? n_correct : n_incorrect)++;
  }
  if (n_correct == 0 || n_incorrect == 0) {
    std::printf("%-24s (insufficient data)\n", name);
    return;
  }
  // AUC by rank sum.
  double rank_sum = 0.0;
  std::size_t seen_correct = 0;
  for (const auto& s : samples) {
    if (s.correct) {
      ++seen_correct;
    } else {
      rank_sum += static_cast<double>(seen_correct);
    }
  }
  const double auc = rank_sum / (static_cast<double>(n_correct) *
                                 static_cast<double>(n_incorrect));

  // Threshold where ~10% of incorrect codewords are labeled good.
  std::size_t target_misses = n_incorrect / 10;
  std::size_t misses = 0;
  double threshold = samples.front().hint;
  for (const auto& s : samples) {
    if (!s.correct) {
      if (++misses > target_misses) break;
    }
    threshold = s.hint;
  }
  std::size_t false_alarms = 0;
  for (const auto& s : samples) {
    if (s.correct && s.hint > threshold) ++false_alarms;
  }
  std::printf("%-24s AUC=%.4f  FA@10%%miss=%.4f  (n=%zu correct, %zu "
              "incorrect)\n",
              name, auc,
              static_cast<double>(false_alarms) /
                  static_cast<double>(n_correct),
              n_correct, n_incorrect);
}

// DSSS hints over an AWGN channel at low SNR.
void DsssHints() {
  const phy::ChipCodebook cb;
  Rng rng(401);
  const int kCodewords = 60000;
  const double ec_n0 = std::pow(10.0, -0.25);  // -2.5 dB: plenty of errors

  std::vector<Sample> hamming, correlation, energy;
  for (int i = 0; i < kCodewords; ++i) {
    const auto sym = static_cast<std::uint8_t>(rng.UniformInt(16));
    std::vector<double> soft(phy::kChipsPerSymbol);
    const double sigma = 1.0 / std::sqrt(2.0 * ec_n0);
    for (int c = 0; c < phy::kChipsPerSymbol; ++c) {
      const double level = cb.Chip(sym, c) ? 1.0 : -1.0;
      soft[static_cast<std::size_t>(c)] = level + rng.Normal(0.0, sigma);
    }
    const auto h =
        phy::DespreadSoft(cb, soft, phy::HintKind::kHammingDistance)[0];
    const auto s =
        phy::DespreadSoft(cb, soft, phy::HintKind::kSoftCorrelation)[0];
    const auto e =
        phy::DespreadSoft(cb, soft, phy::HintKind::kMatchedFilterEnergy)[0];
    hamming.push_back({h.hint, h.symbol == sym});
    correlation.push_back({s.hint, s.symbol == sym});
    energy.push_back({e.hint, e.symbol == sym});
  }
  Report("Hamming distance (HDD)", std::move(hamming));
  Report("SDD correlation margin", std::move(correlation));
  Report("matched-filter energy", std::move(energy));
}

// Viterbi/SOVA reliability over a BSC.
void ViterbiHint() {
  Rng rng(402);
  std::vector<Sample> sova;
  for (int block = 0; block < 60; ++block) {
    BitVec bits;
    for (int i = 0; i < 2000; ++i) bits.PushBack(rng.Bernoulli(0.5));
    BitVec coded = phy::ConvolutionalEncode(bits);
    for (std::size_t i = 0; i < coded.size(); ++i) {
      if (rng.Bernoulli(0.07)) coded.Flip(i);
    }
    const auto result = phy::ViterbiDecodeHard(coded, bits.size());
    const auto symbols = phy::ViterbiToSoftPhySymbols(result);
    for (std::size_t k = 0; k < symbols.size(); ++k) {
      const bool correct =
          symbols[k].symbol == bits.ReadUint(k * 4, 4);
      sova.push_back({symbols[k].hint, correct});
    }
  }
  Report("Viterbi SOVA margin", std::move(sova));
}

}  // namespace

int main() {
  ppr::bench::PrintHeader(
      "Ablation: SoftPHY hint options (sections 3.1, 8.1)",
      "Each hint as a classifier of codeword correctness: AUC (1.0 =\n"
      "perfect ranking) and false-alarm rate at a 10% miss rate.");
  DsssHints();
  ViterbiHint();
  std::printf(
      "\nThe paper's observation that HDD and SDD hints perform similarly\n"
      "holds when their AUCs are close; the matched-filter energy hint\n"
      "is weaker, and the SOVA margin shows coded systems can expose\n"
      "confidence the same way (section 8.1).\n");
  return 0;
}
