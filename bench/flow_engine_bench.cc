// Flow-table engine benchmark: many concurrent small-deficit recovery
// flows through engine::FlowEngine versus the legacy per-object loop
// (one arq coded-repair exchange at a time, RunPpArqExchange).
//
// Two headline numbers, both gated (nonzero exit on failure):
//
//   * sessions/second — the engine leg must complete flows at >= 3x
//     the per-object loop's rate. The engine wins by construction:
//     arena-resident flow state (no per-flow heap churn), one
//     scheduler tick per round instead of one blocking loop per
//     session, and fused cross-flow GF(256) encodes.
//
//   * mean GF(256) span per fused encode — the batch planner gathers
//     every flow due this tick symbol-major and issues ONE GfAxpyN per
//     repair slot spanning the whole group, so the mean span must be
//     >= 4x the unbatched per-flow mean (the legacy leg's mean bytes
//     per GfAxpy/GfAxpyN entry-point call). Under PPR_OBS_OFF the
//     legacy per-call counters are compiled out; the span gate is
//     skipped with a note (the engine's own batch accounting still
//     prints — it lives in EngineStats, not obs).
//
// Usage:
//   flow_engine_bench                  full run, human summary
//   flow_engine_bench --smoke          reduced flow counts (CI smoke)
//   flow_engine_bench --json <path>    also write a flat JSON report
//                                      (kernel=FlowEngine records,
//                                      merged into the regression gate
//                                      via --extra-current)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "arq/link_sim.h"
#include "arq/pp_arq.h"
#include "bench_util.h"
#include "common/bitvec.h"
#include "common/rng.h"
#include "engine/flow_engine.h"
#include "fec/gf256.h"
#include "phy/chip_sequences.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kMinSpeedup = 3.0;    // engine vs legacy sessions/s
constexpr double kMinSpanRatio = 4.0;  // batched vs unbatched mean span

struct BenchShape {
  std::size_t engine_flows = 10'000;
  std::size_t legacy_flows = 160;
  std::size_t payload_octets = 200;
  std::uint64_t seed = 1;
};

struct LegResult {
  std::size_t flows = 0;
  std::size_t completed = 0;
  double seconds = 0.0;
  double sessions_per_s = 0.0;
  // Mean bytes per GF(256) entry-point call over the leg. Engine leg:
  // EngineStats batch accounting (exact, obs-independent). Legacy leg:
  // GfThreadStatsFor delta (zero under PPR_OBS_OFF).
  std::uint64_t gf_calls = 0;
  std::uint64_t gf_bytes = 0;
  double mean_span_bytes = 0.0;
};

struct BenchResult {
  LegResult legacy;
  LegResult engine;
  ppr::engine::EngineStats engine_stats;
};

ppr::engine::EngineConfig EngineShape(const BenchShape& shape) {
  ppr::engine::EngineConfig config;
  config.n_source = 16;
  config.symbol_bytes = 64;
  config.max_deficit = 3;
  config.record_loss = 0.2;
  config.seed = shape.seed;
  return config;
}

// The status quo this PR replaces: one heap-allocated exchange at a
// time, each running its private blocking loop to completion over a
// bursty chip-level channel (the regime of tests/arq).
LegResult RunLegacyLeg(const BenchShape& shape) {
  ppr::arq::PpArqConfig config;
  config.recovery = ppr::arq::RecoveryMode::kCodedRepair;
  ppr::arq::GilbertElliottParams params;
  params.p_good_to_bad = 0.02;
  params.p_bad_to_good = 0.15;
  params.chip_error_good = 0.002;
  params.chip_error_bad = 0.25;
  const ppr::phy::ChipCodebook codebook;

  ppr::Rng payload_rng(shape.seed ^ 0xBADC0DEDull);
  std::vector<ppr::BitVec> payloads;
  payloads.reserve(shape.legacy_flows);
  for (std::size_t f = 0; f < shape.legacy_flows; ++f) {
    ppr::BitVec bits;
    for (std::size_t i = 0; i < shape.payload_octets * 8; ++i) {
      bits.PushBack(payload_rng.Bernoulli(0.5));
    }
    payloads.push_back(std::move(bits));
  }

  LegResult leg;
  leg.flows = shape.legacy_flows;
  const ppr::fec::GfImpl impl = ppr::fec::GfActiveImpl();
  const ppr::fec::GfOpStats before = ppr::fec::GfThreadStatsFor(impl);
  const auto begin = Clock::now();
  for (std::size_t f = 0; f < shape.legacy_flows; ++f) {
    ppr::Rng channel_rng(shape.seed ^ (0x9E3779B97F4A7C15ull * (f + 1)));
    const auto channel =
        ppr::arq::MakeGilbertElliottChannel(codebook, params, channel_rng);
    const auto stats =
        ppr::arq::RunPpArqExchange(payloads[f], config, channel);
    if (stats.success) ++leg.completed;
  }
  const std::chrono::duration<double> elapsed = Clock::now() - begin;
  const ppr::fec::GfOpStats delta = ppr::fec::GfThreadStatsFor(impl) - before;
  leg.seconds = elapsed.count();
  leg.sessions_per_s = leg.seconds > 0.0 ? leg.completed / leg.seconds : 0.0;
  leg.gf_calls = delta.calls;
  leg.gf_bytes = delta.bytes;
  leg.mean_span_bytes =
      delta.calls ? static_cast<double>(delta.bytes) / delta.calls : 0.0;
  return leg;
}

LegResult RunEngineLeg(const BenchShape& shape,
                       ppr::engine::EngineStats& stats_out) {
  ppr::engine::FlowEngine engine(EngineShape(shape));
  LegResult leg;
  leg.flows = shape.engine_flows;
  const auto begin = Clock::now();
  for (std::size_t f = 0; f < shape.engine_flows; ++f) {
    engine.SpawnFlow(static_cast<ppr::engine::FlowId>(f));
  }
  engine.RunAll();
  const std::chrono::duration<double> elapsed = Clock::now() - begin;
  const ppr::engine::EngineStats& stats = engine.stats();
  stats_out = stats;
  leg.completed = stats.flows_completed;
  leg.seconds = elapsed.count();
  leg.sessions_per_s = leg.seconds > 0.0 ? leg.completed / leg.seconds : 0.0;
  leg.gf_calls = stats.batch_calls;
  leg.gf_bytes = stats.batch_bytes;
  leg.mean_span_bytes = stats.batch_calls
                            ? static_cast<double>(stats.batch_bytes) /
                                  stats.batch_calls
                            : 0.0;
  return leg;
}

void PrintSummary(const BenchResult& result) {
  std::fprintf(stderr, "%-8s %9s %9s %11s %12s %14s\n", "leg", "flows",
               "done", "seconds", "sessions/s", "mean_span_B");
  std::fprintf(stderr, "%-8s %9zu %9zu %11.3f %12.0f %14.1f\n", "legacy",
               result.legacy.flows, result.legacy.completed,
               result.legacy.seconds, result.legacy.sessions_per_s,
               result.legacy.mean_span_bytes);
  std::fprintf(stderr, "%-8s %9zu %9zu %11.3f %12.0f %14.1f\n", "engine",
               result.engine.flows, result.engine.completed,
               result.engine.seconds, result.engine.sessions_per_s,
               result.engine.mean_span_bytes);
  std::fprintf(stderr,
               "engine: %llu rounds, %llu repairs sent, %llu delivered, "
               "%llu fused encodes over %llu bytes\n",
               static_cast<unsigned long long>(result.engine_stats.rounds),
               static_cast<unsigned long long>(
                   result.engine_stats.repairs_sent),
               static_cast<unsigned long long>(
                   result.engine_stats.repairs_delivered),
               static_cast<unsigned long long>(
                   result.engine_stats.batch_calls),
               static_cast<unsigned long long>(
                   result.engine_stats.batch_bytes));
}

int CheckAcceptanceGate(const BenchResult& result) {
  int failures = 0;
  const double speedup =
      result.legacy.sessions_per_s > 0.0
          ? result.engine.sessions_per_s / result.legacy.sessions_per_s
          : 0.0;
  std::fprintf(stderr,
               "gate: engine %.0f sessions/s vs legacy %.0f (%.1fx, floor "
               "%.1fx)\n",
               result.engine.sessions_per_s, result.legacy.sessions_per_s,
               speedup, kMinSpeedup);
  if (result.engine.completed == 0 || result.legacy.completed == 0) {
    std::fprintf(stderr, "gate FAILED: a leg completed zero sessions\n");
    ++failures;
  } else if (speedup < kMinSpeedup) {
    std::fprintf(stderr, "gate FAILED: engine below %.1fx legacy rate\n",
                 kMinSpeedup);
    ++failures;
  }
  if (result.legacy.gf_calls == 0) {
    std::fprintf(stderr,
                 "gate: legacy GF per-call counters unavailable "
                 "(PPR_OBS_OFF build) — span gate skipped; engine mean "
                 "fused span %.1f B\n",
                 result.engine.mean_span_bytes);
  } else {
    const double ratio = result.legacy.mean_span_bytes > 0.0
                             ? result.engine.mean_span_bytes /
                                   result.legacy.mean_span_bytes
                             : 0.0;
    std::fprintf(stderr,
                 "gate: mean span %.1f B batched vs %.1f B unbatched "
                 "(%.1fx, floor %.1fx)\n",
                 result.engine.mean_span_bytes,
                 result.legacy.mean_span_bytes, ratio, kMinSpanRatio);
    if (ratio < kMinSpanRatio) {
      std::fprintf(stderr,
                   "gate FAILED: batched span below %.1fx unbatched mean\n",
                   kMinSpanRatio);
      ++failures;
    }
  }
  if (failures == 0) std::fprintf(stderr, "gate passed\n");
  return failures == 0 ? 0 : 1;
}

int WriteReport(const BenchResult& result, const BenchShape& shape,
                const std::string& path) {
  const ppr::engine::EngineConfig engine_config = EngineShape(shape);
  const auto leg_record = [&](const char* impl, const LegResult& leg) {
    return ppr::bench::JsonRecord{
        {"kernel", std::string("FlowEngine")},
        {"impl", std::string(impl)},
        {"symbol_bytes",
         static_cast<std::int64_t>(engine_config.symbol_bytes)},
        {"terms", static_cast<std::int64_t>(engine_config.n_source)},
        {"flows", static_cast<std::int64_t>(leg.flows)},
        {"completed", static_cast<std::int64_t>(leg.completed)},
        {"sessions_per_s", leg.sessions_per_s},
        {"mean_span_bytes", leg.mean_span_bytes}};
  };
  const std::vector<ppr::bench::JsonRecord> records = {
      leg_record("legacy", result.legacy),
      leg_record("engine", result.engine)};
  const ppr::bench::JsonRecord header = {
      {"bench", std::string("flow_engine_bench")}};
  if (!ppr::bench::WriteJsonReport(path, header, "results", records)) {
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  BenchShape shape;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      shape.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>] [--seed <n>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) {
    shape.engine_flows = 1'000;
    shape.legacy_flows = 24;
  }

  BenchResult result;
  result.legacy = RunLegacyLeg(shape);
  result.engine = RunEngineLeg(shape, result.engine_stats);
  PrintSummary(result);
  if (!json_path.empty() && WriteReport(result, shape, json_path) != 0) {
    return 1;
  }
  return CheckAcceptanceGate(result);
}
