// Figure 3: the distribution of Hamming distances for every codeword in
// every received packet, separated by whether the codeword decoded
// correctly, at the three offered loads. This is the result that
// justifies Hamming distance as a SoftPHY hint: correct codewords
// cluster at distance <= 1, incorrect ones spread far higher.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"

namespace {

using namespace ppr;
using namespace ppr::bench;

void RunLoad(double load_bps, const char* label) {
  IntHistogram correct, incorrect;
  RunTestbed(load_bps, /*carrier_sense=*/false, PaperSchemes(),
             [&](const sim::ReceptionRecord& record,
                 const sim::ReceiverModel& model) {
               // "Every received packet": only receptions the PHY
               // actually acquired, on links above the audibility floor.
               if (!record.preamble_sync && !record.postamble_sync) return;
               if (record.snr_db < 3.0) return;
               const std::size_t first = model.PayloadCwOffset();
               const std::size_t count = model.PayloadCwCount();
               for (std::size_t i = 0; i < count; ++i) {
                 const auto& cw = record.trace[first + i];
                 (cw.correct ? correct : incorrect).Add(cw.distance);
               }
             });

  std::printf("# %s, correct codewords (n=%zu)\n", label, correct.Total());
  for (long d = 0; d <= 12; ++d) {
    std::printf("%ld\t%.4f\n", d, correct.CdfAt(d));
  }
  std::printf("\n# %s, incorrect codewords (n=%zu)\n", label,
              incorrect.Total());
  for (long d = 0; d <= 12; ++d) {
    std::printf("%ld\t%.4f\n", d, incorrect.CdfAt(d));
  }
  std::printf("\n");

  std::printf(
      "summary: %s: P(d<=1 | correct)=%.3f, P(d<=6 | incorrect)=%.3f\n\n",
      label, correct.CdfAt(1), incorrect.CdfAt(6));
}

}  // namespace

int main() {
  PrintHeader("Figure 3",
              "CDF of per-codeword Hamming distance, correct vs incorrect "
              "decodings, at 3.5/6.9/13.8 Kbits/s/node offered load.\n"
              "Paper: ~96% of correct codewords at distance <= 1; barely "
              "10% of incorrect codewords at distance <= 6.");
  RunLoad(kModerateLoad, "3.5 Kbits/s/node");
  RunLoad(kMediumLoad, "6.9 Kbits/s/node");
  RunLoad(kHighLoad, "13.8 Kbits/s/node");
  return 0;
}
