// Ablation: how the SoftPHY threshold eta trades delivered-correct bits
// against delivered-wrong bits (misses), and where the paper's choice
// eta = 6 sits. Also sweeps the chip-level interference penalty used to
// calibrate the testbed simulator against constant-envelope co-channel
// interference.
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace ppr;
using namespace ppr::bench;

void EtaSweep() {
  std::printf("# eta sweep at 6.9 Kbits/s/node (postamble on):\n");
  std::printf("%-6s%-16s%-16s%-12s\n", "eta", "correct_Mbit", "wrong_Kbit",
              "median_FDR");
  for (const double eta : {0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 16.0}) {
    sim::SchemeConfig scheme;
    scheme.scheme = sim::Scheme::kPpr;
    scheme.postamble = true;
    scheme.eta = eta;
    const auto result =
        RunTestbed(kMediumLoad, /*carrier_sense=*/false, {scheme});
    std::size_t correct = 0, wrong = 0;
    for (const auto& link : result.links) {
      correct += link.schemes[0].delivered_bits;
      wrong += link.schemes[0].wrong_bits;
    }
    std::printf("%-6.0f%-16.3f%-16.3f%-12.4f\n", eta,
                static_cast<double>(correct) / 1e6,
                static_cast<double>(wrong) / 1e3,
                LinkFdrCdf(result, 0).Median());
  }
  std::printf("\n");
}

void InterferencePenaltySweep() {
  std::printf("# interference penalty sweep (PPR postamble, 6.9 "
              "Kbits/s/node):\n");
  std::printf("%-10s%-14s%-14s\n", "penalty", "median_FDR", "links");
  for (const double penalty : {1.0, 2.0, 3.0, 5.0}) {
    auto config = sim::MakePaperConfig(kMediumLoad, /*carrier_sense=*/false,
                                       kSimDuration, /*seed=*/42);
    config.receiver.interference_penalty = penalty;
    const sim::TestbedExperiment experiment(config);
    sim::SchemeConfig scheme;
    scheme.scheme = sim::Scheme::kPpr;
    scheme.postamble = true;
    const auto result = experiment.Run({scheme});
    std::printf("%-10.1f%-14.4f%-14zu\n", penalty,
                LinkFdrCdf(result, 0).Median(), result.links.size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintHeader("Ablation",
              "Design-choice sweeps: SoftPHY threshold eta (section 3.2) "
              "and the chip-level\ninterference penalty calibration "
              "(DESIGN.md).");
  EtaSweep();
  InterferencePenaltySweep();
  return 0;
}
