// Collision-recovery yield benchmark (src/collide/): at three
// contention levels, every collision episode is run twice over
// identically seeded draws — once with the resolver on (stripping +
// algebraic banking) and once as today's discard baseline — so any
// repair-bit difference is pure collision-recovery yield.
//
// Headline numbers, both gated (nonzero exit on failure):
//
//   * repair bits saved — at every contention level with episodes, the
//     resolve leg must deliver at least as many packets as discard
//     while spending strictly fewer repair bits.
//
//   * resolved-rank fraction — rank the banked equations contributed
//     before any repair symbol crossed the air, as a fraction of the
//     block's total rank across episodes. At the highest contention
//     level at least one pair must fully resolve by stripping and the
//     banked equations must have raised rank at all.
//
// Usage:
//   collision_bench                  full run, human summary
//   collision_bench --smoke          reduced packet counts (CI smoke)
//   collision_bench --json <path>    also write a flat JSON report
//                                    (kernel=CollisionRecovery records,
//                                    merged into the regression gate
//                                    via --extra-current)
//   collision_bench --seed N         reseed every stream
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "arq/chip_medium.h"
#include "arq/link_sim.h"
#include "arq/pp_arq.h"
#include "arq/recovery_strategy.h"
#include "bench_util.h"
#include "collide/capture.h"
#include "collide/listener.h"
#include "collide/runner.h"
#include "common/bitvec.h"
#include "common/rng.h"
#include "phy/chip_sequences.h"

namespace {

struct BenchShape {
  std::size_t packets_per_level = 40;
  std::size_t payload_octets = 60;
  std::size_t codewords_per_fec_symbol = 4;
  double chip_error_p = 0.002;
  std::uint64_t seed = 1;
};

struct LegResult {
  std::size_t episodes = 0;
  std::size_t completed = 0;
  std::size_t repair_bits = 0;
  std::size_t rank_gained = 0;
  std::size_t pairs_resolved = 0;
};

struct LevelResult {
  int contention_percent = 0;
  std::size_t packets = 0;
  std::size_t num_symbols = 0;
  LegResult resolve;
  LegResult discard;

  double ResolvedRankFraction() const {
    const std::size_t denom = resolve.episodes * num_symbols;
    return denom == 0 ? 0.0
                      : static_cast<double>(resolve.rank_gained) /
                            static_cast<double>(denom);
  }
  double RepairBitsSavedPerEpisode() const {
    if (resolve.episodes == 0 || resolve.repair_bits >= discard.repair_bits) {
      return 0.0;
    }
    return static_cast<double>(discard.repair_bits - resolve.repair_bits) /
           static_cast<double>(resolve.episodes);
  }
};

LevelResult RunLevel(const BenchShape& shape, double contention) {
  ppr::arq::PpArqConfig config;
  config.recovery = ppr::arq::RecoveryMode::kCollisionResolve;
  config.codewords_per_fec_symbol = shape.codewords_per_fec_symbol;
  const auto strategy = ppr::arq::MakeRecoveryStrategy(config);
  const ppr::phy::ChipCodebook codebook;

  ppr::collide::CollisionEpisodeParams params;
  params.b_octets = shape.payload_octets;
  params.chip_error_p = shape.chip_error_p;
  ppr::collide::CollisionListenerConfig listener_config;
  listener_config.codewords_per_fec_symbol = shape.codewords_per_fec_symbol;

  LevelResult level;
  level.contention_percent = static_cast<int>(contention * 100.0 + 0.5);
  level.packets = shape.packets_per_level;
  const std::size_t body_codewords = (shape.payload_octets * 8 + 32) / 4;
  level.num_symbols = body_codewords / shape.codewords_per_fec_symbol;

  for (std::size_t p = 0; p < shape.packets_per_level; ++p) {
    ppr::Rng payload_rng(
        ppr::arq::SeedForTransmission(shape.seed, /*sender=*/1, p));
    ppr::BitVec payload;
    for (std::size_t i = 0; i < shape.payload_octets; ++i) {
      payload.AppendUint(payload_rng.UniformInt(256), 8);
    }
    const std::uint64_t round_seed =
        ppr::arq::SeedForCollisionRound(shape.seed, /*tx_a=*/1, p);
    {
      ppr::Rng gate(round_seed);
      if (!gate.Bernoulli(contention)) continue;  // no collision: the
      // packet costs both legs the same and is left out of the yield.
    }
    for (const bool resolve : {true, false}) {
      ppr::Rng episode_rng(round_seed);
      episode_rng.Bernoulli(contention);  // replay the gate draw
      ppr::Rng channel_rng(
          ppr::arq::SeedForCollisionRound(shape.seed, /*tx_a=*/2, p));
      const auto channel = ppr::arq::MakeChipErrorChannel(
          codebook, shape.chip_error_p, channel_rng);
      const auto outcome = ppr::collide::RunCollisionRecoveryExchange(
          payload, config, *strategy, channel, params, episode_rng,
          listener_config, resolve);
      LegResult& leg = resolve ? level.resolve : level.discard;
      ++leg.episodes;
      leg.completed += outcome.totals.success;
      for (const auto bits : outcome.totals.retransmission_bits) {
        leg.repair_bits += bits;
      }
      leg.rank_gained += outcome.rank_gained;
      leg.pairs_resolved += outcome.resolved_pair;
    }
  }
  return level;
}

int Gate(const std::vector<LevelResult>& levels) {
  int failures = 0;
  for (const auto& level : levels) {
    if (level.resolve.episodes == 0) {
      std::fprintf(stderr, "gate: k=%d saw no episodes; skipped\n",
                   level.contention_percent);
      continue;
    }
    if (level.resolve.completed < level.discard.completed) {
      std::fprintf(stderr,
                   "FAIL: k=%d resolve delivered %zu < discard %zu\n",
                   level.contention_percent, level.resolve.completed,
                   level.discard.completed);
      ++failures;
    }
    if (level.resolve.repair_bits >= level.discard.repair_bits) {
      std::fprintf(stderr,
                   "FAIL: k=%d resolve repair bits %zu >= discard %zu\n",
                   level.contention_percent, level.resolve.repair_bits,
                   level.discard.repair_bits);
      ++failures;
    }
  }
  const auto& top = levels.back();
  if (top.resolve.pairs_resolved == 0) {
    std::fprintf(stderr, "FAIL: no double collision fully resolved at "
                         "the highest contention level\n");
    ++failures;
  }
  if (top.resolve.rank_gained == 0) {
    std::fprintf(stderr, "FAIL: banked equations raised no rank at the "
                         "highest contention level\n");
    ++failures;
  }
  if (failures == 0) std::fprintf(stderr, "gate passed\n");
  return failures == 0 ? 0 : 1;
}

int WriteReport(const std::vector<LevelResult>& levels,
                const std::string& path) {
  std::vector<ppr::bench::JsonRecord> records;
  for (const auto& level : levels) {
    const auto leg_record = [&](const char* impl, const LegResult& leg) {
      return ppr::bench::JsonRecord{
          {"kernel", std::string("CollisionRecovery")},
          {"impl", std::string(impl)},
          {"k", static_cast<std::int64_t>(level.contention_percent)},
          {"packets", static_cast<std::int64_t>(level.packets)},
          {"episodes", static_cast<std::int64_t>(leg.episodes)},
          {"completed", static_cast<std::int64_t>(leg.completed)},
          {"repair_bits", static_cast<std::int64_t>(leg.repair_bits)},
          {"rank_gained", static_cast<std::int64_t>(leg.rank_gained)},
          {"pairs_resolved",
           static_cast<std::int64_t>(leg.pairs_resolved)},
          {"resolved_rank_fraction", level.ResolvedRankFraction()}};
    };
    records.push_back(leg_record("resolve", level.resolve));
    records.push_back(leg_record("discard", level.discard));
  }
  const ppr::bench::JsonRecord header = {
      {"bench", std::string("collision_bench")}};
  if (!ppr::bench::WriteJsonReport(path, header, "results", records)) {
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchShape shape;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      shape.packets_per_level = 6;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      shape.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--seed N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<LevelResult> levels;
  for (const double contention : {0.3, 0.6, 0.9}) {
    levels.push_back(RunLevel(shape, contention));
  }

  std::printf("# collision_bench: %zu packets/level, %zu-octet payload, "
              "chip_error_p=%g\n",
              shape.packets_per_level, shape.payload_octets,
              shape.chip_error_p);
  std::printf("%-4s %-9s %-9s %-14s %-14s %-10s %-12s\n", "k%", "episodes",
              "resolved", "resolve_bits", "discard_bits", "saved/ep",
              "rank_frac");
  for (const auto& level : levels) {
    std::printf("%-4d %-9zu %-9zu %-14zu %-14zu %-10.0f %-12.3f\n",
                level.contention_percent, level.resolve.episodes,
                level.resolve.pairs_resolved, level.resolve.repair_bits,
                level.discard.repair_bits, level.RepairBitsSavedPerEpisode(),
                level.ResolvedRankFraction());
  }

  int rc = Gate(levels);
  if (!json_path.empty()) rc = WriteReport(levels, json_path) ? 1 : rc;
  return rc;
}
