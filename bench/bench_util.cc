#include "bench_util.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace ppr::bench {

namespace {

void WriteJsonString(std::FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fprintf(f, "\\%c", c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", static_cast<unsigned>(c));
    } else {
      std::fputc(c, f);
    }
  }
  std::fputc('"', f);
}

void WriteJsonScalar(std::FILE* f, const JsonScalar& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    std::fprintf(f, "%" PRId64, *i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    std::fprintf(f, "%.10g", *d);
  } else {
    WriteJsonString(f, std::get<std::string>(v));
  }
}

// Fields are emitted in sorted key order (stable for duplicate keys), so
// a report is byte-stable for a given record set no matter how the caller
// assembled it — the same contract the obs:: exporters keep.
JsonRecord SortedByKey(JsonRecord record) {
  std::stable_sort(
      record.begin(), record.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  return record;
}

void WriteJsonFields(std::FILE* f, const JsonRecord& record) {
  for (const auto& [key, value] : SortedByKey(record)) {
    std::fprintf(f, ", ");
    WriteJsonString(f, key);
    std::fprintf(f, ": ");
    WriteJsonScalar(f, value);
  }
}

}  // namespace

bool WriteJsonReport(const std::string& path, const JsonRecord& header,
                     const std::string& records_key,
                     const std::vector<JsonRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "WriteJsonReport: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"schema\": 1");
  WriteJsonFields(f, header);
  std::fprintf(f, ", ");
  WriteJsonString(f, records_key);
  std::fprintf(f, ": [");
  for (std::size_t i = 0; i < records.size(); ++i) {
    JsonRecord with_index = records[i];
    with_index.emplace_back("index", static_cast<std::int64_t>(i));
    std::fprintf(f, "%s\n  {", i ? "," : "");
    const JsonRecord sorted = SortedByKey(std::move(with_index));
    for (std::size_t k = 0; k < sorted.size(); ++k) {
      if (k) std::fprintf(f, ", ");
      WriteJsonString(f, sorted[k].first);
      std::fprintf(f, ": ");
      WriteJsonScalar(f, sorted[k].second);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n]}\n");
  const bool ok = std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "WriteJsonReport: write failed: %s\n", path.c_str());
  return ok;
}

std::vector<sim::SchemeConfig> PaperSchemes(std::size_t num_fragments,
                                            double eta) {
  std::vector<sim::SchemeConfig> schemes;
  for (const auto scheme :
       {sim::Scheme::kPacketCrc, sim::Scheme::kFragmentedCrc,
        sim::Scheme::kPpr}) {
    for (const bool post : {false, true}) {
      sim::SchemeConfig c;
      c.scheme = scheme;
      c.postamble = post;
      c.num_fragments = num_fragments;
      c.eta = eta;
      schemes.push_back(c);
    }
  }
  return schemes;
}

sim::ExperimentResult RunTestbed(double load_bps, bool carrier_sense,
                                 const std::vector<sim::SchemeConfig>& schemes,
                                 const sim::ReceptionObserver& observer,
                                 double duration_s) {
  const auto config =
      sim::MakePaperConfig(load_bps, carrier_sense, duration_s, /*seed=*/42);
  const sim::TestbedExperiment experiment(config);
  return experiment.Run(schemes, observer);
}

void PrintCdf(const std::string& label, const CdfCollector& cdf,
              std::size_t points) {
  std::printf("# %s (n=%zu", label.c_str(), cdf.Count());
  if (!cdf.Empty()) {
    std::printf(", median=%.4g", cdf.Median());
  }
  std::printf(")\n");
  for (const auto& [x, f] : cdf.CdfPoints(points)) {
    std::printf("%.6g\t%.4f\n", x, f);
  }
  std::printf("\n");
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n\n");
}

CdfCollector LinkFdrCdf(const sim::ExperimentResult& result,
                        std::size_t scheme_index) {
  CdfCollector cdf;
  for (const auto& link : result.links) {
    if (link.frames_sent == 0) continue;
    cdf.Add(link.Fdr(scheme_index));
  }
  return cdf;
}

CdfCollector LinkThroughputCdf(const sim::ExperimentResult& result,
                               const std::vector<sim::SchemeConfig>& schemes,
                               std::size_t scheme_index) {
  CdfCollector cdf;
  for (const auto& link : result.links) {
    if (link.frames_sent == 0) continue;
    cdf.Add(link.ThroughputBps(scheme_index, schemes[scheme_index],
                               result.payload_octets, result.duration_s));
  }
  return cdf;
}

}  // namespace ppr::bench
