#include "bench_util.h"

#include <cstdio>

namespace ppr::bench {

std::vector<sim::SchemeConfig> PaperSchemes(std::size_t num_fragments,
                                            double eta) {
  std::vector<sim::SchemeConfig> schemes;
  for (const auto scheme :
       {sim::Scheme::kPacketCrc, sim::Scheme::kFragmentedCrc,
        sim::Scheme::kPpr}) {
    for (const bool post : {false, true}) {
      sim::SchemeConfig c;
      c.scheme = scheme;
      c.postamble = post;
      c.num_fragments = num_fragments;
      c.eta = eta;
      schemes.push_back(c);
    }
  }
  return schemes;
}

sim::ExperimentResult RunTestbed(double load_bps, bool carrier_sense,
                                 const std::vector<sim::SchemeConfig>& schemes,
                                 const sim::ReceptionObserver& observer,
                                 double duration_s) {
  const auto config =
      sim::MakePaperConfig(load_bps, carrier_sense, duration_s, /*seed=*/42);
  const sim::TestbedExperiment experiment(config);
  return experiment.Run(schemes, observer);
}

void PrintCdf(const std::string& label, const CdfCollector& cdf,
              std::size_t points) {
  std::printf("# %s (n=%zu", label.c_str(), cdf.Count());
  if (!cdf.Empty()) {
    std::printf(", median=%.4g", cdf.Median());
  }
  std::printf(")\n");
  for (const auto& [x, f] : cdf.CdfPoints(points)) {
    std::printf("%.6g\t%.4f\n", x, f);
  }
  std::printf("\n");
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n\n");
}

CdfCollector LinkFdrCdf(const sim::ExperimentResult& result,
                        std::size_t scheme_index) {
  CdfCollector cdf;
  for (const auto& link : result.links) {
    if (link.frames_sent == 0) continue;
    cdf.Add(link.Fdr(scheme_index));
  }
  return cdf;
}

CdfCollector LinkThroughputCdf(const sim::ExperimentResult& result,
                               const std::vector<sim::SchemeConfig>& schemes,
                               std::size_t scheme_index) {
  CdfCollector cdf;
  for (const auto& link : result.links) {
    if (link.frames_sent == 0) continue;
    cdf.Add(link.ThroughputBps(scheme_index, schemes[scheme_index],
                               result.payload_octets, result.duration_s));
  }
  return cdf;
}

}  // namespace ppr::bench
