// Shared driver for Figures 8, 9, and 10: the per-link equivalent frame
// delivery rate CDF under the six scheme variants, at a given offered
// load and carrier-sense setting.
#pragma once

#include <cstdio>

#include "bench_util.h"

namespace ppr::bench {

inline void RunFdrFigure(double load_bps, bool carrier_sense) {
  const auto schemes = PaperSchemes();
  const auto result = RunTestbed(load_bps, carrier_sense, schemes);

  std::printf("links: %zu, transmissions: %zu, duration: %.0fs\n\n",
              result.links.size(), result.total_transmissions,
              result.duration_s);

  for (std::size_t k = 0; k < schemes.size(); ++k) {
    PrintCdf(schemes[k].Name(), LinkFdrCdf(result, k));
  }

  // Headline comparison: median FDR ratios against the status quo.
  const double base = LinkFdrCdf(result, 0).Median();  // Packet CRC, no post
  std::printf("summary (median per-link FDR, ratio vs Packet CRC/no "
              "postamble):\n");
  for (std::size_t k = 0; k < schemes.size(); ++k) {
    const double median = LinkFdrCdf(result, k).Median();
    std::printf("  %-38s %.4f", schemes[k].Name().c_str(), median);
    if (base > 0.0) {
      std::printf("  (%.2fx)", median / base);
    }
    std::printf("\n");
  }
}

}  // namespace ppr::bench
