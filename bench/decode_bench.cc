// Decode-complexity scoreboard: the GF(2^16) FFT Reed-Solomon erasure
// decoder against RLNC Gaussian elimination at k in {64, 256, 1024},
// and the fused one-pass [coefs | data] elimination against a faithful
// two-pass replica (separate coefficient and payload sweeps — the
// pre-fusion RlncDecoder layout). Both comparisons are the PR-level
// acceptance gates, enforced by this binary's exit code:
//
//   * RS erasure decode >= 4x RLNC Gaussian elimination at k = 1024,
//     1 KiB symbols (the O(k log k) vs O(k^2) win),
//   * fused elimination >= 1.2x the two-pass replica at k = 256,
//     64 B symbols (the coefficient-heavy regime fusion targets).
//
// Modes:
//   (default)        full sweep, human-readable table, gates enforced.
//   --json <path>    full sweep; also writes flat JSON records
//                    ({bench, kernel, k, symbol_bytes, mb_per_s} plus
//                    ratio records) for bench/check_regression.py and
//                    the committed BENCH_decode.json trajectory.
//   --smoke          reduced shapes (k <= 256), single-shot timing,
//                    relaxed gates — a CI bit-rot guard that still
//                    verifies decoded symbols bit-exactly on every
//                    path, cheap enough for Debug/ASan legs.
//
// Every measured decode is verified against the ground-truth block
// before its time is accepted; a wrong symbol fails the run harder
// than any ratio could.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "fec/gf256.h"
#include "fec/reed_solomon.h"
#include "fec/rlnc.h"

namespace {

using namespace ppr;

std::vector<std::uint8_t> RandomBytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  return out;
}

std::vector<std::vector<std::uint8_t>> RandomBlock(Rng& rng, std::size_t n,
                                                   std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> block(n);
  for (auto& s : block) s = RandomBytes(rng, bytes);
  return block;
}

// Seconds per rep, adaptive: grows the batch until the timed region
// dwarfs clock granularity, then takes the best (least-disturbed) of
// three batches. Smoke mode times a single rep — good enough for a
// bit-rot guard, far too noisy for the strict gates (which smoke
// relaxes accordingly).
template <typename Fn>
double SecsPerRep(Fn&& rep, bool smoke) {
  using Clock = std::chrono::steady_clock;
  rep();  // warm caches and field tables
  if (smoke) {
    const auto begin = Clock::now();
    rep();
    return std::chrono::duration<double>(Clock::now() - begin).count();
  }
  std::size_t reps = 1;
  double best = 0.0;
  for (;;) {
    const auto begin = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) rep();
    const double secs =
        std::chrono::duration<double>(Clock::now() - begin).count();
    if (secs < 0.05 && reps < (1u << 20)) {
      reps *= 4;
      continue;
    }
    best = secs / static_cast<double>(reps);
    break;
  }
  for (int round = 0; round < 2; ++round) {
    const auto begin = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) rep();
    const double secs =
        std::chrono::duration<double>(Clock::now() - begin).count();
    best = std::min(best, secs / static_cast<double>(reps));
  }
  return best;
}

double Mbps(std::size_t bytes, double secs) {
  return static_cast<double>(bytes) / secs / 1e6;
}

[[noreturn]] void FailCorrectness(const char* what) {
  std::fprintf(stderr, "decode_bench: CORRECTNESS FAILURE: %s\n", what);
  std::exit(2);
}

// ------------------------------------------------- RLNC vs RS erasure decode
//
// Identical task for both codecs: k source symbols, the first k/2
// erased, recovered from k/2 repair/parity symbols. RLNC pays dense
// Gaussian elimination (O(e^2) row sweeps); RS pays three size-2K
// additive FFTs (O(K log K)). Throughput is normalized to the full
// block (k * symbol_bytes per decode) so the RS/RLNC ratio is exactly
// the decode-time ratio.

double RlncDecodeMbps(std::size_t k, std::size_t bytes, bool smoke) {
  Rng rng(701);
  const std::size_t erased = k / 2;
  const auto block = RandomBlock(rng, k, bytes);
  const fec::RlncEncoder encoder(block);
  std::vector<fec::RepairSymbol> repairs;
  for (std::uint32_t s = 1; s <= erased + 4; ++s) {
    repairs.push_back(encoder.MakeRepair(s));
  }
  fec::RlncDecoder decoder(k, bytes);
  bool verified = false;
  const double secs = SecsPerRep(
      [&] {
        decoder.Reset();
        for (std::size_t i = erased; i < k; ++i) {
          decoder.AddSourceSpan(i, block[i]);
        }
        std::size_t r = 0;
        while (!decoder.Complete() && r < repairs.size()) {
          decoder.AddRepair(repairs[r++]);
        }
        if (!decoder.Complete()) FailCorrectness("RLNC decode incomplete");
        if (!verified) {
          verified = true;
          for (std::size_t i = 0; i < erased; ++i) {
            const auto sym = decoder.Symbol(i);
            if (!std::equal(sym.begin(), sym.end(), block[i].begin())) {
              FailCorrectness("RLNC recovered symbol mismatch");
            }
          }
        }
      },
      smoke);
  return Mbps(k * bytes, secs);
}

double RsDecodeMbps(std::size_t k, std::size_t bytes, bool smoke) {
  Rng rng(702);
  const std::size_t erased = k / 2;
  const auto block = RandomBlock(rng, k, bytes);
  fec::ReedSolomonEncoder encoder(k, erased, bytes);
  for (std::size_t i = 0; i < k; ++i) encoder.SetSource(i, block[i]);
  encoder.Finish();
  fec::ReedSolomonDecoder decoder(k, erased, bytes);
  bool verified = false;
  const double secs = SecsPerRep(
      [&] {
        decoder.Reset();
        for (std::size_t i = erased; i < k; ++i) {
          decoder.AddSourceSpan(i, block[i]);
        }
        for (std::size_t j = 0; j < erased; ++j) {
          decoder.AddParitySpan(j, encoder.Parity(j));
        }
        if (!decoder.CanDecode()) FailCorrectness("RS decode short of rank");
        decoder.Decode();
        if (!verified) {
          verified = true;
          for (std::size_t i = 0; i < erased; ++i) {
            const auto sym = decoder.Symbol(i);
            if (!std::equal(sym.begin(), sym.end(), block[i].begin())) {
              FailCorrectness("RS recovered symbol mismatch");
            }
          }
        }
      },
      smoke);
  return Mbps(k * bytes, secs);
}

// ----------------------------------------------- fused vs two-pass sweep
//
// The two-pass replica is the pre-fusion RlncDecoder: coefficient
// vector and payload stored separately, so every elimination step is
// two GfAxpy dispatches (and pivot normalization two GfScale calls)
// instead of one pass over a contiguous [coefs | data] row. Both
// decoders consume the same seed-expanded dense equations and must
// produce bit-identical symbols.

class TwoPassDecoder {
 public:
  TwoPassDecoder(std::size_t n, std::size_t bytes)
      : n_(n), bytes_(bytes), pivot_(n) {}

  void Reset() {
    for (auto& p : pivot_) p.reset();
    rank_ = 0;
  }
  bool Complete() const { return rank_ == n_; }

  bool AddEquation(std::vector<std::uint8_t> coefs,
                   std::vector<std::uint8_t> data) {
    // Forward sweep: two GfAxpy calls per already-placed pivot.
    for (std::size_t col = 0; col < n_; ++col) {
      const std::uint8_t c = coefs[col];
      if (c == 0 || !pivot_[col].has_value()) continue;
      fec::GfAxpy(coefs, c, pivot_[col]->coefs);
      fec::GfAxpy(data, c, pivot_[col]->data);
    }
    std::size_t lead = n_;
    for (std::size_t col = 0; col < n_; ++col) {
      if (coefs[col] != 0) {
        lead = col;
        break;
      }
    }
    if (lead == n_) return false;
    const std::uint8_t inv = fec::GfInv(coefs[lead]);
    fec::GfScale(coefs, inv);
    fec::GfScale(data, inv);
    // Back-elimination into every existing row: two more passes each.
    for (std::size_t col = 0; col < n_; ++col) {
      if (!pivot_[col].has_value()) continue;
      const std::uint8_t c = pivot_[col]->coefs[lead];
      if (c == 0) continue;
      fec::GfAxpy(pivot_[col]->coefs, c, coefs);
      fec::GfAxpy(pivot_[col]->data, c, data);
    }
    pivot_[lead] = Row{std::move(coefs), std::move(data)};
    ++rank_;
    return true;
  }

  const std::vector<std::uint8_t>& Symbol(std::size_t i) const {
    return pivot_[i]->data;
  }

 private:
  struct Row {
    std::vector<std::uint8_t> coefs;
    std::vector<std::uint8_t> data;
  };
  std::size_t n_, bytes_, rank_ = 0;
  std::vector<std::optional<Row>> pivot_;
};

struct ElimResult {
  double fused_mbps = 0.0;
  double twopass_mbps = 0.0;
};

ElimResult ElimSweep(std::size_t k, std::size_t bytes, bool smoke) {
  Rng rng(703);
  const auto block = RandomBlock(rng, k, bytes);
  const fec::RlncEncoder encoder(block);
  // A pure dense solve: every symbol erased, k + slack dense equations.
  std::vector<fec::RepairSymbol> repairs;
  for (std::uint32_t s = 1; s <= k + 4; ++s) {
    repairs.push_back(encoder.MakeRepair(s));
  }
  ElimResult out;

  fec::RlncDecoder fused(k, bytes);
  out.fused_mbps = Mbps(
      k * bytes, SecsPerRep(
                     [&] {
                       fused.Reset();
                       std::size_t r = 0;
                       while (!fused.Complete() && r < repairs.size()) {
                         fused.AddRepair(repairs[r++]);
                       }
                       if (!fused.Complete()) {
                         FailCorrectness("fused elimination incomplete");
                       }
                     },
                     smoke));

  TwoPassDecoder twopass(k, bytes);
  out.twopass_mbps = Mbps(
      k * bytes,
      SecsPerRep(
          [&] {
            twopass.Reset();
            std::size_t r = 0;
            while (!twopass.Complete() && r < repairs.size()) {
              twopass.AddEquation(
                  fec::RepairCoefficients(repairs[r].seed, k),
                  repairs[r].data);
              ++r;
            }
            if (!twopass.Complete()) {
              FailCorrectness("two-pass elimination incomplete");
            }
          },
          smoke));

  // Both eliminators must agree with the block bit-exactly.
  for (std::size_t i = 0; i < k; ++i) {
    const auto sym = fused.Symbol(i);
    if (!std::equal(sym.begin(), sym.end(), block[i].begin()) ||
        twopass.Symbol(i) != block[i]) {
      FailCorrectness("fused/two-pass symbol mismatch");
    }
  }
  return out;
}

// ---------------------------------------------------------------- driver

int Run(bool smoke, const std::string& json_path) {
  const std::string active(fec::GfImplName(fec::GfActiveImpl()));
  std::fprintf(stderr, "decode_bench: gf256 backend = %s%s\n", active.c_str(),
               smoke ? " (smoke)" : "");
  std::vector<bench::JsonRecord> records;
  std::vector<std::string> failures;

  const std::vector<std::size_t> ks =
      smoke ? std::vector<std::size_t>{64, 256}
            : std::vector<std::size_t>{64, 256, 1024};
  const std::size_t bytes = smoke ? 256 : 1024;
  double gated_ratio = 0.0;
  std::size_t gated_k = 0;
  for (const std::size_t k : ks) {
    const double rlnc = RlncDecodeMbps(k, bytes, smoke);
    const double rs = RsDecodeMbps(k, bytes, smoke);
    const double ratio = rs / rlnc;
    std::fprintf(stderr,
                 "k=%4zu  %4zu B  RlncDecode %9.1f MB/s  RsDecode %9.1f MB/s"
                 "  rs/rlnc %6.2fx\n",
                 k, bytes, rlnc, rs, ratio);
    records.push_back({{"kernel", std::string("RlncDecode")},
                       {"k", static_cast<std::int64_t>(k)},
                       {"symbol_bytes", static_cast<std::int64_t>(bytes)},
                       {"mb_per_s", rlnc}});
    records.push_back({{"kernel", std::string("RsDecode")},
                       {"k", static_cast<std::int64_t>(k)},
                       {"symbol_bytes", static_cast<std::int64_t>(bytes)},
                       {"mb_per_s", rs}});
    records.push_back({{"kernel", std::string("RsOverRlnc")},
                       {"k", static_cast<std::int64_t>(k)},
                       {"symbol_bytes", static_cast<std::int64_t>(bytes)},
                       {"ratio", ratio}});
    gated_ratio = ratio;
    gated_k = k;
  }
  // Gate on the largest k measured: 4x at k = 1024 (the acceptance
  // criterion); smoke only proves RS is not slower at k = 256.
  const double rs_floor = smoke ? 1.0 : 4.0;
  if (gated_ratio < rs_floor) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "RS decode %.2fx RLNC at k=%zu: below the %.1fx floor",
                  gated_ratio, gated_k, rs_floor);
    failures.emplace_back(buf);
  }

  const std::size_t elim_k = 256;
  const std::size_t elim_bytes = 64;
  const ElimResult elim = ElimSweep(elim_k, elim_bytes, smoke);
  const double elim_ratio = elim.fused_mbps / elim.twopass_mbps;
  std::fprintf(stderr,
               "k=%4zu  %4zu B  ElimTwoPass %8.1f MB/s  ElimFused %8.1f MB/s"
               "  fused/two-pass %5.2fx\n",
               elim_k, elim_bytes, elim.twopass_mbps, elim.fused_mbps,
               elim_ratio);
  records.push_back({{"kernel", std::string("ElimFused")},
                     {"k", static_cast<std::int64_t>(elim_k)},
                     {"symbol_bytes", static_cast<std::int64_t>(elim_bytes)},
                     {"mb_per_s", elim.fused_mbps}});
  records.push_back({{"kernel", std::string("ElimTwoPass")},
                     {"k", static_cast<std::int64_t>(elim_k)},
                     {"symbol_bytes", static_cast<std::int64_t>(elim_bytes)},
                     {"mb_per_s", elim.twopass_mbps}});
  records.push_back({{"kernel", std::string("FusedOverTwoPass")},
                     {"k", static_cast<std::int64_t>(elim_k)},
                     {"symbol_bytes", static_cast<std::int64_t>(elim_bytes)},
                     {"ratio", elim_ratio}});
  const double elim_floor = smoke ? 0.9 : 1.2;
  if (elim_ratio < elim_floor) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "fused elimination %.2fx two-pass: below the %.2fx floor",
                  elim_ratio, elim_floor);
    failures.emplace_back(buf);
  }

  if (!json_path.empty()) {
    const bench::JsonRecord header = {
        {"bench", std::string("decode_bench")}, {"active_impl", active}};
    if (!bench::WriteJsonReport(json_path, header, "results", records)) {
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  for (const auto& msg : failures) {
    std::fprintf(stderr, "FAIL: %s\n", msg.c_str());
  }
  if (failures.empty()) {
    std::fprintf(stderr, "OK: decode gates hold (rs/rlnc %.2fx at k=%zu, "
                 "fused %.2fx two-pass)\n",
                 gated_ratio, gated_k, elim_ratio);
  }
  return failures.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "decode_bench: missing path after --json\n");
        return 1;
      }
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "decode_bench: unknown argument %s\n", argv[i]);
      return 1;
    }
  }
  return Run(smoke, json_path);
}
