#!/usr/bin/env python3
"""Validate the trace exports written by obs::Tracer.

Usage:
    validate_trace.py --jsonl trace.jsonl --chrome trace.json
                      [--min-events N]

Checks (both files are optional; pass what the run produced):

  * JSONL: every line is a standalone JSON object with the required
    keys (args, cat, name, ph, pid, tid, ts; dur on ph == "X"), keys in
    sorted order (the byte-stable contract), integer timestamps.
  * Chrome trace: the whole document parses, carries displayTimeUnit
    and a traceEvents list, and every event has the required keys in
    sorted order with numeric microsecond timestamps.
  * --min-events N (default 0) fails when either export holds fewer
    events — an instrumented run that traced nothing is itself a bug.
    PPR_OBS_OFF builds export valid empty documents; validate those
    with the default floor of 0.
"""

import argparse
import collections
import json
import sys

JSONL_REQUIRED = {"args", "cat", "name", "ph", "pid", "tid", "ts"}
PHASES = {"X", "i"}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def ordered(pairs):
    return collections.OrderedDict(pairs)


def check_sorted(obj, where):
    keys = list(obj.keys())
    if keys != sorted(keys):
        return fail(f"{where}: keys not sorted: {keys}")
    return 0


def check_event(event, where, ts_type):
    rc = check_sorted(event, where)
    missing = JSONL_REQUIRED - set(event)
    if missing:
        rc |= fail(f"{where}: missing keys {sorted(missing)}")
        return rc
    if event["ph"] not in PHASES:
        rc |= fail(f"{where}: unexpected phase {event['ph']!r}")
    if event["ph"] == "X" and "dur" not in event:
        rc |= fail(f"{where}: complete event lacks dur")
    for key in ("ts", "dur"):
        if key in event and not isinstance(event[key], ts_type):
            rc |= fail(f"{where}: {key} is {type(event[key]).__name__}, "
                       f"want {ts_type}")
    if not isinstance(event["args"], dict):
        rc |= fail(f"{where}: args is not an object")
    else:
        rc |= check_sorted(event["args"], f"{where} args")
    return rc


def check_jsonl(path, min_events):
    rc = 0
    events = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                event = json.loads(line, object_pairs_hook=ordered)
            except json.JSONDecodeError as e:
                rc |= fail(f"{where}: {e}")
                continue
            events += 1
            # JSONL keeps integer nanoseconds.
            rc |= check_event(event, where, int)
    if events < min_events:
        rc |= fail(f"{path}: {events} events, expected >= {min_events}")
    if rc == 0:
        print(f"{path}: {events} events OK")
    return rc


def check_chrome(path, min_events):
    rc = 0
    with open(path) as f:
        try:
            doc = json.load(f, object_pairs_hook=ordered)
        except json.JSONDecodeError as e:
            return fail(f"{path}: {e}")
    if doc.get("displayTimeUnit") != "ms":
        rc |= fail(f"{path}: displayTimeUnit is not 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return rc | fail(f"{path}: traceEvents is not a list")
    for i, event in enumerate(events):
        # Chrome traces carry microseconds as decimals.
        rc |= check_event(event, f"{path} event {i}", (int, float))
    if len(events) < min_events:
        rc |= fail(f"{path}: {len(events)} events, expected >= {min_events}")
    if rc == 0:
        print(f"{path}: {len(events)} events OK")
    return rc


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--jsonl")
    parser.add_argument("--chrome")
    parser.add_argument("--min-events", type=int, default=0)
    args = parser.parse_args()
    if not args.jsonl and not args.chrome:
        parser.error("pass --jsonl and/or --chrome")
    rc = 0
    if args.jsonl:
        rc |= check_jsonl(args.jsonl, args.min_events)
    if args.chrome:
        rc |= check_chrome(args.chrome, args.min_events)
    return rc


if __name__ == "__main__":
    sys.exit(main())
